//! The solve engine: routing, the embedding cache, circuit breakers, and
//! the three backends behind one synchronous `solve` call. Workers of the
//! batching queue share one engine; everything inside is `Sync`.
//!
//! Robustness model (DESIGN.md §9): every backend attempt runs inside its
//! own `catch_unwind`, failures (real, panicked, or chaos-injected) are
//! recorded against that backend's [`CircuitBreaker`], and the request
//! falls through an ordered candidate chain — annealer → MILP → hill
//! climbing — until a healthy backend answers. Only when every candidate is
//! breaker-open or failing does the request resolve to a typed
//! `503 backend_unavailable`.

use crate::api::{Backend, Reject, SolveRequest, SolveResponse};
use crate::breaker::{BreakerConfig, BreakerSnapshot, CircuitBreaker};
use crate::cache::{CacheKey, CacheStats, EmbeddingCache};
use crate::chaos::{ChaosConfig, SampleCorruption, CHAOS_PANIC_MESSAGE};
use crate::metrics::Metrics;
use crate::router::{route, RouteDecision, RouterConfig};
use mqo::pipeline::{
    PackedInstance, PipelineError, QuantumMqoOutcome, QuantumMqoSolver, ResilienceConfig,
};
use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::sa::SimulatedAnnealingSampler;
use mqo_chimera::embedding::{embed_structure, Embedding, EmbeddingError};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::packing::{self, Placer};
use mqo_core::ids::PlanId;
use mqo_core::integrity::{self, DEFAULT_TOLERANCE};
use mqo_core::logical::LogicalMapping;
use mqo_core::problem::MqoProblem;
use mqo_core::solution::Selection;
use mqo_heuristics::HillClimbing;
use mqo_milp::bb_mqo::{self, MqoBbConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration. [`EngineConfig::new`] applies service defaults
/// sized for interactive latency (100 reads, not the paper's offline 1000).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Device topology.
    pub graph: ChimeraGraph,
    /// Device protocol defaults; per-request `reads`/`gauges` override them.
    pub device: DeviceConfig,
    /// Fault-tolerance policy of the pipeline.
    pub resilience: ResilienceConfig,
    /// Weight slack ε of both mapping stages (paper: 0.25).
    pub epsilon: f64,
    /// LRU bound of the embedding cache (0 disables caching).
    pub cache_capacity: usize,
    /// Routing policy.
    pub router: RouterConfig,
    /// Attempts of the heuristic embedder on cache misses.
    pub embed_tries: usize,
    /// Wall-clock budget of the classical backends.
    pub classical_budget: Duration,
    /// Hard cap on per-request annealing reads.
    pub max_reads: usize,
    /// Per-backend circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Deterministic chaos injection (inert by default).
    pub chaos: ChaosConfig,
    /// Whether every successful answer is re-validated (feasibility + cost
    /// recomputation) before it is served. On by default; turning it off is
    /// a bench-only escape hatch.
    pub verify_gate: bool,
    /// Whether a gate failure is deterministically repaired (min-delta
    /// settle + bounded descent) and re-verified instead of rejected with a
    /// typed 500.
    pub integrity_repair: bool,
    /// Relative tolerance of the gate's cost comparison.
    pub integrity_tolerance: f64,
    /// Whether workers may pack multiple small requests onto disjoint chip
    /// regions and answer them from one composite programming cycle
    /// (DESIGN.md §12). Off by default; a packed answer is bit-identical to
    /// the same request solved solo with the same seed.
    pub packing: bool,
    /// Upper bound on tenants per packed cycle.
    pub packing_max_tenants: usize,
}

impl EngineConfig {
    /// Service defaults on the given topology.
    pub fn new(graph: ChimeraGraph) -> Self {
        EngineConfig {
            graph,
            device: DeviceConfig {
                num_reads: 100,
                num_gauges: 10,
                ..DeviceConfig::default()
            },
            resilience: ResilienceConfig::default(),
            epsilon: 0.25,
            cache_capacity: 128,
            router: RouterConfig::default(),
            embed_tries: 16,
            classical_budget: Duration::from_millis(250),
            max_reads: 10_000,
            breaker: BreakerConfig::default(),
            chaos: ChaosConfig::NONE,
            verify_gate: true,
            integrity_repair: true,
            integrity_tolerance: DEFAULT_TOLERANCE,
            packing: false,
            packing_max_tenants: 16,
        }
    }
}

/// The shared, thread-safe solve engine.
#[derive(Debug)]
pub struct SolveEngine {
    config: EngineConfig,
    graph_fingerprint: u64,
    cache: EmbeddingCache,
    metrics: Arc<Metrics>,
    /// One breaker per backend, indexed by `Backend as usize`.
    breakers: [CircuitBreaker; 3],
}

impl SolveEngine {
    /// Builds the engine, fingerprinting the graph once.
    pub fn new(config: EngineConfig, metrics: Arc<Metrics>) -> Self {
        let graph_fingerprint = config.graph.fingerprint();
        let cache = EmbeddingCache::new(config.cache_capacity);
        let breakers = [
            CircuitBreaker::new(config.breaker),
            CircuitBreaker::new(config.breaker),
            CircuitBreaker::new(config.breaker),
        ];
        SolveEngine {
            config,
            graph_fingerprint,
            cache,
            metrics,
            breakers,
        }
    }

    /// The circuit breaker guarding `backend`.
    pub fn breaker(&self, backend: Backend) -> &CircuitBreaker {
        &self.breakers[backend as usize]
    }

    /// Breaker snapshots of all three backends, for `/metrics`.
    pub fn breaker_panel(&self) -> BreakerPanel {
        BreakerPanel {
            annealer: self.breaker(Backend::Annealer).snapshot(),
            milp: self.breaker(Backend::Milp).snapshot(),
            hill_climbing: self.breaker(Backend::HillClimbing).snapshot(),
        }
    }

    /// The shared metrics handle.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Embedding-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Solves one admitted request synchronously. Every failure path is a
    /// typed [`Reject`]; the only panic that can escape is the
    /// chaos-injected worker panic (by design — the batching worker's
    /// `catch_unwind` isolates it into a `500 internal_error`).
    pub fn solve(&self, req: &SolveRequest) -> Result<SolveResponse, Reject> {
        let start = Instant::now();
        if self.config.chaos.worker_panics(req.seed) {
            Metrics::inc(&self.metrics.chaos_panics_injected);
            panic!("{CHAOS_PANIC_MESSAGE} (request seed {})", req.seed);
        }
        let decision = match req.backend {
            Some(backend) => RouteDecision {
                backend,
                reason: "pinned by request".to_string(),
            },
            None => route(&req.problem, &self.config.graph, &self.config.router),
        };
        // The fall-through chain behind the routed first choice. A pinned
        // request gets exactly its backend: pinning is a debugging/bench
        // contract ("this answer came from X"), so degrading it silently
        // would lie to the client.
        let candidates: Vec<Backend> = match (req.backend, decision.backend) {
            (Some(b), _) => vec![b],
            (None, Backend::Annealer) => {
                let mut chain = vec![Backend::Annealer];
                if req.problem.num_queries() <= self.config.router.milp_max_queries {
                    chain.push(Backend::Milp);
                }
                chain.push(Backend::HillClimbing);
                chain
            }
            (None, Backend::Milp) => vec![Backend::Milp, Backend::HillClimbing],
            (None, Backend::HillClimbing) => vec![Backend::HillClimbing, Backend::Milp],
        };

        let mut notes: Vec<String> = Vec::new();
        let mut any_unavailable = false;
        for (rank, &backend) in candidates.iter().enumerate() {
            if !self.breaker(backend).admit() {
                if rank == 0 {
                    Metrics::inc(&self.metrics.breaker_skips);
                }
                notes.push(format!("{backend}: breaker open"));
                any_unavailable = true;
                continue;
            }
            match self.attempt(backend, req) {
                Ok(mut response) => {
                    self.breaker(backend).record_success();
                    response.route_reason = if notes.is_empty() {
                        decision.reason
                    } else {
                        format!("{} [degraded: {}]", decision.reason, notes.join("; "))
                    };
                    if let Some(mode) = self.config.chaos.sample_corruption(req.seed) {
                        Metrics::inc(&self.metrics.chaos_corruptions_injected);
                        corrupt_response(&mut response, &req.problem, mode);
                    }
                    self.gate(req, &mut response)?;
                    self.finish(&mut response, start);
                    return Ok(response);
                }
                Err(AttemptFailure::Embedding(e)) => {
                    // The embedder could not place this instance (e.g. a
                    // dense savings graph on a degraded chip). That is a
                    // property of the instance, not of backend health, so
                    // it does not trip the breaker.
                    notes.push(format!("{backend}: embedding failed ({e})"));
                }
                Err(failure) => {
                    self.breaker(backend).record_failure();
                    Metrics::inc(&self.metrics.backend_attempt_failures);
                    any_unavailable = true;
                    notes.push(format!("{backend}: {failure}"));
                }
            }
        }

        let detail = notes.join("; ");
        if any_unavailable {
            Metrics::inc(&self.metrics.rejected_unavailable);
            Err(Reject::BackendUnavailable { detail })
        } else {
            Metrics::inc(&self.metrics.rejected_unsolvable);
            Err(Reject::Unsolvable { detail })
        }
    }

    /// One attempt of one backend: chaos roll, then the solver inside its
    /// own `catch_unwind` so a panicking backend is a breaker failure, not
    /// a dead worker.
    fn attempt(
        &self,
        backend: Backend,
        req: &SolveRequest,
    ) -> Result<SolveResponse, AttemptFailure> {
        if self.config.chaos.backend_fails(req.seed, backend) {
            Metrics::inc(&self.metrics.chaos_backend_failures_injected);
            return Err(AttemptFailure::Injected);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match backend {
            Backend::Annealer => self.solve_annealer(req),
            Backend::Milp => Ok(self.solve_milp(req)),
            Backend::HillClimbing => Ok(self.solve_climbing(req)),
        }));
        match outcome {
            Ok(Ok(response)) => Ok(response),
            Ok(Err(AnnealerFailure::Embedding(e))) => Err(AttemptFailure::Embedding(e)),
            Ok(Err(AnnealerFailure::Fatal(detail))) => Err(AttemptFailure::Fatal(detail)),
            Err(payload) => Err(AttemptFailure::Panicked(crate::chaos::panic_message(
                payload.as_ref(),
            ))),
        }
    }

    /// The answer-integrity gate (DESIGN.md §11): re-validates every
    /// successful answer — structural feasibility plus the reported cost
    /// against a from-scratch recomputation — before it is served. A clean
    /// answer passes untouched (the gate is observably transparent); a
    /// corrupt one is either deterministically repaired and re-verified, or
    /// withheld as a typed `500 integrity_violation`. Never serves an
    /// answer it could not verify.
    fn gate(&self, req: &SolveRequest, response: &mut SolveResponse) -> Result<(), Reject> {
        if !self.config.verify_gate {
            return Ok(());
        }
        let candidate = Selection::new(response.selection.iter().map(|&p| PlanId(p)).collect());
        let violation = match integrity::verify_selection(
            &req.problem,
            &candidate,
            response.cost,
            self.config.integrity_tolerance,
        ) {
            Ok(_) => return Ok(()),
            Err(e) => e,
        };
        Metrics::inc(&self.metrics.integrity_violations);
        if self.config.integrity_repair {
            if let Ok(repaired) = integrity::repair_selection(&req.problem, &candidate) {
                let (sel, cost, _) = HillClimbing::descend_bounded(
                    &req.problem,
                    repaired.selection,
                    self.config.resilience.repair_descent_moves,
                );
                if integrity::verify_selection(
                    &req.problem,
                    &sel,
                    cost,
                    self.config.integrity_tolerance,
                )
                .is_ok()
                {
                    Metrics::inc(&self.metrics.integrity_repairs);
                    response.selection = sel.plans().iter().map(|p| p.0).collect();
                    response.cost = cost;
                    response.route_reason = format!(
                        "{} [integrity: repaired ({violation})]",
                        response.route_reason
                    );
                    return Ok(());
                }
            }
        }
        Metrics::inc(&self.metrics.integrity_rejects);
        Err(Reject::IntegrityViolation {
            detail: violation.to_string(),
        })
    }

    /// Success bookkeeping shared by every backend: per-backend counters,
    /// cache-counter mirroring, and the wall clock.
    fn finish(&self, response: &mut SolveResponse, start: Instant) {
        match response.backend {
            Backend::Annealer => Metrics::inc(&self.metrics.backend_annealer),
            Backend::Milp => Metrics::inc(&self.metrics.backend_milp),
            Backend::HillClimbing => Metrics::inc(&self.metrics.backend_hill_climbing),
        }
        // Mirror cache counters into the service metrics (single source of
        // truth stays the cache; /metrics reports both consistently).
        let cs = self.cache.stats();
        self.metrics
            .cache_hits
            .store(cs.hits, std::sync::atomic::Ordering::Relaxed);
        self.metrics
            .cache_misses
            .store(cs.misses, std::sync::atomic::Ordering::Relaxed);
        self.metrics
            .cache_evictions
            .store(cs.evictions, std::sync::atomic::Ordering::Relaxed);
        Metrics::inc(&self.metrics.solved_total);
        response.wall_us = start.elapsed().as_micros() as u64;
    }

    /// The canonical (region-relative) embedding of a logical structure,
    /// through the cache. The cache key pairs the structure hash with the
    /// fingerprint of the *pristine region graph* the canonical TRIAD lives
    /// on — not the device graph — so a warm hit relocates to any free
    /// region without re-embedding.
    fn canonical_embedding(&self, logical: &LogicalMapping) -> (Arc<Embedding>, bool, usize) {
        let n = logical.qubo().num_vars();
        let side = packing::footprint_side(n);
        let key = CacheKey {
            structure: logical.qubo().structure_hash(),
            graph: packing::region_graph(n).fingerprint(),
        };
        match self.cache.get(key) {
            Some(e) => (e, true, side),
            None => {
                let e = Arc::new(packing::canonical_embedding(n));
                self.cache.insert(key, Arc::clone(&e));
                (e, false, side)
            }
        }
    }

    /// Places one instance on the device graph: the cached canonical TRIAD
    /// relocated to the first free fault-clean region (which, on a fresh
    /// placer, scans exactly the origins the legacy TRIAD embedder scans —
    /// solo answers are unchanged). Instances the placer cannot host fall
    /// back to the legacy full-graph embedder, heuristic included.
    fn placed_embedding(
        &self,
        logical: &LogicalMapping,
        placer: &mut Placer<'_>,
    ) -> Result<(Embedding, bool), EmbeddingError> {
        let graph = &self.config.graph;
        let (canonical, cache_hit, side) = self.canonical_embedding(logical);
        if side <= graph.rows().min(graph.cols()) {
            if let Some(placement) = placer.place(&canonical, side) {
                return Ok((placement.embedding, cache_hit));
            }
        }
        let key = CacheKey {
            structure: logical.qubo().structure_hash(),
            graph: self.graph_fingerprint,
        };
        match self.cache.get(key) {
            Some(e) => Ok(((*e).clone(), true)),
            None => {
                let edges: Vec<_> = logical
                    .qubo()
                    .quadratic()
                    .iter()
                    .map(|&(a, b, _)| (a, b))
                    .collect();
                let e = embed_structure(
                    graph,
                    logical.qubo().num_vars(),
                    &edges,
                    key.structure,
                    self.config.embed_tries,
                )?;
                self.cache.insert(key, Arc::new(e.clone()));
                Ok((e, false))
            }
        }
    }

    /// The device protocol this request runs under: server defaults with
    /// the per-request overrides clamped to server caps.
    fn effective_device(&self, req: &SolveRequest) -> DeviceConfig {
        let mut device = self.config.device;
        if let Some(reads) = req.reads {
            device.num_reads = reads.clamp(1, self.config.max_reads);
        }
        if let Some(gauges) = req.gauges {
            device.num_gauges = gauges.clamp(1, device.num_reads);
        }
        device.num_gauges = device.num_gauges.min(device.num_reads);
        device
    }

    fn annealer_solver(&self, device: DeviceConfig) -> QuantumMqoSolver<SimulatedAnnealingSampler> {
        QuantumMqoSolver {
            graph: self.config.graph.clone(),
            device: QuantumAnnealer::new(device, SimulatedAnnealingSampler::default()),
            epsilon: self.config.epsilon,
            resilience: self.config.resilience,
        }
    }

    /// Read accounting + response assembly shared by the solo and packed
    /// annealer paths.
    fn annealer_response(&self, outcome: QuantumMqoOutcome, cache_hit: bool) -> SolveResponse {
        Metrics::add(
            &self.metrics.reads_verified_clean,
            outcome.integrity.verified_clean as u64,
        );
        Metrics::add(
            &self.metrics.reads_repaired,
            outcome.integrity.repaired as u64,
        );
        Metrics::add(
            &self.metrics.reads_broken_chains,
            outcome.broken_chain_reads as u64,
        );
        Metrics::add(
            &self.metrics.chain_majority_repairs,
            outcome.chain_breaks.majority_repairs as u64,
        );
        Metrics::add(
            &self.metrics.chain_tie_breaks,
            outcome.chain_breaks.tie_breaks as u64,
        );
        let (selection, cost) = outcome.best;
        SolveResponse {
            selection: selection.plans().iter().map(|p| p.0).collect(),
            cost,
            backend: Backend::Annealer,
            route_reason: String::new(),
            cache_hit,
            reads: outcome.reads,
            qubits_used: outcome.qubits_used,
            device_time_us: outcome
                .trace
                .points()
                .last()
                .map_or(0.0, |p| p.elapsed.as_secs_f64() * 1e6),
            wall_us: 0,
            queue_wait_us: 0,
            packed_tenants: 0,
        }
    }

    fn solve_annealer(&self, req: &SolveRequest) -> Result<SolveResponse, AnnealerFailure> {
        let logical = LogicalMapping::new(&req.problem, self.config.epsilon);
        let mut placer = Placer::new(&self.config.graph);
        let (embedding, cache_hit) = self
            .placed_embedding(&logical, &mut placer)
            .map_err(AnnealerFailure::Embedding)?;
        let solver = self.annealer_solver(self.effective_device(req));
        let outcome = solver
            .solve_with_embedding(&req.problem, embedding, req.seed)
            .map_err(|e| match e {
                PipelineError::Embedding(e) => AnnealerFailure::Embedding(e),
                other => AnnealerFailure::Fatal(other.to_string()),
            })?;
        Ok(self.annealer_response(outcome, cache_hit))
    }

    /// Whether `req` may ride in a packed cycle: unpinned, routed to the
    /// annealer, its breaker fully closed (a half-open probe must stay a
    /// single observable attempt), and free of chaos rolls — an injected
    /// panic or backend failure must strike the request on the solo path,
    /// where the isolation machinery is exercised, not its batchmates.
    fn packable(&self, req: &SolveRequest) -> Option<RouteDecision> {
        if req.backend.is_some()
            || self.config.chaos.worker_panics(req.seed)
            || self.config.chaos.backend_fails(req.seed, Backend::Annealer)
            || self.breaker(Backend::Annealer).state() != crate::breaker::BreakerState::Closed
        {
            return None;
        }
        let decision = route(&req.problem, &self.config.graph, &self.config.router);
        (decision.backend == Backend::Annealer).then_some(decision)
    }

    /// Solves a batch multi-tenant: packable requests are placed onto
    /// disjoint regions of the chip (first-fit-decreasing over their TRIAD
    /// footprints) and answered from one composite programming cycle.
    ///
    /// Returns one slot per request: `Some(result)` when the request was
    /// answered packed (result as `solve` would produce, bit-identical
    /// modulo `route_reason`/timings), `None` when it must take the solo
    /// path — not packable, declined by the placer, or its tenant hit a
    /// device fault the solo resilience loop owns (retries, re-embeds,
    /// classical fallback). The integrity gate runs per tenant, so one
    /// corrupted tenant never poisons its batchmates.
    pub fn solve_packed(
        &self,
        reqs: &[&SolveRequest],
    ) -> Vec<Option<Result<SolveResponse, Reject>>> {
        let batch_start = Instant::now();
        let mut out: Vec<Option<Result<SolveResponse, Reject>>> =
            reqs.iter().map(|_| None).collect();
        if !self.config.packing || reqs.len() < 2 {
            return out;
        }

        // Screen, then group on the effective device protocol: one cycle
        // has one (reads, gauges) schedule, so the leader's protocol defines
        // the group and differently-configured requests solve solo.
        let mut candidates: Vec<(usize, RouteDecision)> = Vec::new();
        let mut leader: Option<(usize, usize)> = None;
        for (i, req) in reqs.iter().enumerate() {
            if candidates.len() >= self.config.packing_max_tenants {
                break;
            }
            let Some(decision) = self.packable(req) else {
                continue;
            };
            let device = self.effective_device(req);
            let protocol = (device.num_reads, device.num_gauges);
            match leader {
                None => leader = Some(protocol),
                Some(p) if p != protocol => continue,
                Some(_) => {}
            }
            candidates.push((i, decision));
        }
        if candidates.len() < 2 {
            return out;
        }

        // First-fit-decreasing greedy fill: place big footprints first,
        // stop at the first decline (the chip is full for this cycle).
        let mut placer = Placer::new(&self.config.graph);
        struct Tenant {
            idx: usize,
            reason: String,
            embedding: Embedding,
            cache_hit: bool,
        }
        let mut tenants: Vec<Tenant> = Vec::new();
        let logicals: Vec<LogicalMapping> = candidates
            .iter()
            .map(|&(i, _)| LogicalMapping::new(&reqs[i].problem, self.config.epsilon))
            .collect();
        let sides: Vec<usize> = logicals
            .iter()
            .map(|l| packing::footprint_side(l.qubo().num_vars()))
            .collect();
        for c in packing::ffd_order(&sides) {
            let (idx, ref decision) = candidates[c];
            let (canonical, cache_hit, side) = self.canonical_embedding(&logicals[c]);
            let placed = (side <= self.config.graph.rows().min(self.config.graph.cols()))
                .then(|| placer.place(&canonical, side))
                .flatten();
            match placed {
                Some(placement) => tenants.push(Tenant {
                    idx,
                    reason: decision.reason.clone(),
                    embedding: placement.embedding,
                    cache_hit,
                }),
                None => {
                    Metrics::inc(&self.metrics.packing_declines);
                    break;
                }
            }
        }
        if tenants.len() < 2 {
            return out;
        }

        Metrics::inc(&self.metrics.packed_batches);
        let solver = self.annealer_solver(self.effective_device(reqs[tenants[0].idx]));
        let instances: Vec<PackedInstance<'_>> = tenants
            .iter()
            .map(|t| PackedInstance {
                problem: &reqs[t.idx].problem,
                embedding: t.embedding.clone(),
                seed: reqs[t.idx].seed,
            })
            .collect();
        let outcomes = solver.solve_packed(&instances);
        let count = tenants.len();
        for (tenant, outcome) in tenants.iter().zip(outcomes) {
            let Some(outcome) = outcome else {
                continue; // device fault: the solo resilience loop owns it
            };
            let req = reqs[tenant.idx];
            self.breaker(Backend::Annealer).record_success();
            let mut response = self.annealer_response(outcome, tenant.cache_hit);
            response.route_reason = format!("{} [packed: {count} tenants]", tenant.reason);
            response.packed_tenants = count;
            if let Some(mode) = self.config.chaos.sample_corruption(req.seed) {
                Metrics::inc(&self.metrics.chaos_corruptions_injected);
                corrupt_response(&mut response, &req.problem, mode);
            }
            let result = self.gate(req, &mut response).map(|()| {
                self.finish(&mut response, batch_start);
                response
            });
            Metrics::inc(&self.metrics.tenants_packed);
            out[tenant.idx] = Some(result);
        }
        out
    }

    fn solve_milp(&self, req: &SolveRequest) -> SolveResponse {
        let outcome = bb_mqo::solve(
            &req.problem,
            &MqoBbConfig {
                deadline: Some(self.config.classical_budget),
                ..MqoBbConfig::default()
            },
        );
        match outcome.best {
            Some((selection, cost)) => SolveResponse {
                selection: selection.plans().iter().map(|p| p.0).collect(),
                cost,
                backend: Backend::Milp,
                route_reason: String::new(),
                cache_hit: false,
                reads: 0,
                qubits_used: 0,
                device_time_us: 0.0,
                wall_us: 0,
                queue_wait_us: 0,
                packed_tenants: 0,
            },
            // Branch-and-bound found nothing inside the budget (it always
            // has an incumbent in practice, but stay total): climb instead.
            None => {
                let mut r = self.solve_climbing(req);
                r.route_reason = "MILP budget produced no incumbent; climbed instead".to_string();
                r
            }
        }
    }

    fn solve_climbing(&self, req: &SolveRequest) -> SolveResponse {
        let problem = &req.problem;
        let deadline = Instant::now() + self.config.classical_budget;
        let first = Selection::new(
            problem
                .queries()
                .map(|q| {
                    problem
                        .plans_of(q)
                        .next()
                        .expect("every query has at least one plan")
                })
                .collect(),
        );
        let (mut best_sel, mut best_cost) = HillClimbing::climb(problem, first, deadline);
        let mut rng = ChaCha8Rng::seed_from_u64(req.seed);
        for _ in 0..4 {
            if Instant::now() >= deadline {
                break;
            }
            let restart = Selection::new(
                problem
                    .queries()
                    .map(|q| {
                        let k = rng.gen_range(0..problem.num_plans_of(q));
                        problem.plans_of(q).nth(k).expect("plan index in range")
                    })
                    .collect(),
            );
            let (sel, cost) = HillClimbing::climb(problem, restart, deadline);
            if cost < best_cost {
                best_sel = sel;
                best_cost = cost;
            }
        }
        SolveResponse {
            selection: best_sel.plans().iter().map(|p| p.0).collect(),
            cost: best_cost,
            backend: Backend::HillClimbing,
            route_reason: String::new(),
            cache_hit: false,
            reads: 0,
            qubits_used: 0,
            device_time_us: 0.0,
            wall_us: 0,
            queue_wait_us: 0,
            packed_tenants: 0,
        }
    }
}

/// Applies the chaos-chosen mangling to a successful answer. Every mode
/// yields a response [`SolveEngine::gate`] must flag: a cross-query plan
/// flip is structurally infeasible, a non-finite cost fails the finiteness
/// check. Single-query problems have no cross-query plan to flip, so that
/// mode degrades to a NaN cost.
fn corrupt_response(response: &mut SolveResponse, problem: &MqoProblem, mode: SampleCorruption) {
    match mode {
        SampleCorruption::CrossQueryPlan if problem.num_queries() >= 2 => {
            // Query 0's entry now points at query 1's selected plan: one
            // query uncovered, one doubly covered — always infeasible.
            response.selection[0] = response.selection[1];
        }
        SampleCorruption::CrossQueryPlan | SampleCorruption::NanCost => {
            response.cost = f64::NAN;
        }
        SampleCorruption::InfCost => response.cost = f64::INFINITY,
    }
}

enum AnnealerFailure {
    Embedding(EmbeddingError),
    Fatal(String),
}

/// Why one backend attempt did not produce an answer.
enum AttemptFailure {
    /// The embedder could not place the instance (does not trip breakers).
    Embedding(EmbeddingError),
    /// The backend ran and failed fatally.
    Fatal(String),
    /// A chaos roll failed the attempt before it ran.
    Injected,
    /// The backend panicked; caught by the per-attempt `catch_unwind`.
    Panicked(String),
}

impl std::fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptFailure::Embedding(e) => write!(f, "embedding failed ({e})"),
            AttemptFailure::Fatal(detail) => write!(f, "failed ({detail})"),
            AttemptFailure::Injected => write!(f, "failed (chaos: injected backend failure)"),
            AttemptFailure::Panicked(msg) => write!(f, "panicked ({msg})"),
        }
    }
}

/// Breaker snapshots of all three backends, serialised under
/// `"breakers"` in the `/metrics` payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPanel {
    /// The annealer backend's breaker.
    pub annealer: BreakerSnapshot,
    /// The MILP backend's breaker.
    pub milp: BreakerSnapshot,
    /// The hill-climbing backend's breaker.
    pub hill_climbing: BreakerSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::problem::MqoProblem;

    fn paper_example() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    fn engine() -> SolveEngine {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 50;
        cfg.device.num_gauges = 5;
        SolveEngine::new(cfg, Arc::new(Metrics::default()))
    }

    #[test]
    fn annealer_path_matches_the_offline_pipeline() {
        let e = engine();
        let problem = paper_example();
        let req = SolveRequest::new(problem.clone(), 11);
        let r = e.solve(&req).unwrap();
        assert_eq!(r.backend, Backend::Annealer);
        assert!(!r.cache_hit, "first request is a miss");
        assert_eq!(r.cost, 2.0);
        // Identical to QuantumMqoSolver::solve with the same seed.
        let offline = QuantumMqoSolver::new(
            ChimeraGraph::new(2, 2),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 50,
                    num_gauges: 5,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        )
        .solve(&problem, 11)
        .unwrap();
        let offline_sel: Vec<u32> = offline.best.0.plans().iter().map(|p| p.0).collect();
        assert_eq!(r.selection, offline_sel);
        assert_eq!(r.cost, offline.best.1);
        assert_eq!(r.reads, offline.reads);
    }

    #[test]
    fn second_identical_structure_is_a_cache_hit_with_identical_samples() {
        let e = engine();
        let cold = e.solve(&SolveRequest::new(paper_example(), 7)).unwrap();
        let warm = e.solve(&SolveRequest::new(paper_example(), 7)).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.selection, warm.selection);
        assert_eq!(cold.cost, warm.cost);
        assert_eq!(cold.reads, warm.reads);
        let stats = e.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn over_capacity_requests_answer_classically() {
        // 5 queries × 2 plans = 10 plans: over the 1×1 clique (4) and the
        // clustered bound (4 two-plan queries per cell).
        let mut cfg = EngineConfig::new(ChimeraGraph::new(1, 1));
        cfg.classical_budget = Duration::from_millis(50);
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let mut b = MqoProblem::builder();
        for _ in 0..5 {
            b.add_query(&[3.0, 1.0]);
        }
        let problem = b.build().unwrap();
        let r = e.solve(&SolveRequest::new(problem.clone(), 0)).unwrap();
        assert_eq!(r.backend, Backend::Milp);
        // MILP inside its budget is exact here: all cheap plans.
        assert_eq!(r.cost, 5.0);
        assert!(problem
            .validate_selection(&Selection::new(
                r.selection
                    .iter()
                    .map(|&p| mqo_core::ids::PlanId(p))
                    .collect()
            ))
            .is_ok());
    }

    #[test]
    fn pinned_backend_overrides_the_router() {
        let e = engine();
        let mut req = SolveRequest::new(paper_example(), 3);
        req.backend = Some(Backend::HillClimbing);
        let r = e.solve(&req).unwrap();
        assert_eq!(r.backend, Backend::HillClimbing);
        assert_eq!(r.route_reason, "pinned by request");
        assert_eq!(r.cost, 2.0, "the tiny example climbs to its optimum");
    }

    #[test]
    fn per_request_read_overrides_are_clamped() {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.max_reads = 60;
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let mut req = SolveRequest::new(paper_example(), 1);
        req.reads = Some(1_000_000);
        let r = e.solve(&req).unwrap();
        assert_eq!(r.reads, 60, "server cap applies");
    }

    #[test]
    fn open_breaker_falls_through_to_the_next_backend() {
        let e = engine();
        // Trip the annealer breaker by hand.
        for _ in 0..e.config().breaker.failure_threshold {
            e.breaker(Backend::Annealer).record_failure();
        }
        assert_eq!(
            e.breaker(Backend::Annealer).state(),
            crate::breaker::BreakerState::Open
        );
        let r = e.solve(&SolveRequest::new(paper_example(), 5)).unwrap();
        assert_ne!(r.backend, Backend::Annealer, "open backend is skipped");
        assert!(
            r.route_reason.contains("degraded") && r.route_reason.contains("breaker open"),
            "degradation is visible to the client: {}",
            r.route_reason
        );
        assert_eq!(r.cost, 2.0, "the fallback still solves the instance");
        let panel = e.breaker_panel();
        assert_eq!(panel.annealer.rejected_total, 1);
    }

    #[test]
    fn injected_backend_failures_trip_the_breaker_and_fall_through() {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 50;
        cfg.device.num_gauges = 5;
        cfg.chaos = ChaosConfig {
            seed: 41,
            backend_failure_rate: 1.0,
            ..ChaosConfig::NONE
        };
        // Rate 1.0 fails every backend attempt: after `failure_threshold`
        // requests every breaker is open and requests get a typed 503.
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let mut last = None;
        for seed in 0..10 {
            last = Some(e.solve(&SolveRequest::new(paper_example(), seed)));
        }
        let err = last.unwrap().unwrap_err();
        assert!(
            matches!(err, Reject::BackendUnavailable { .. }),
            "all-failing backends resolve to 503, got {err}"
        );
        assert_eq!(err.http_status(), 503);
        let panel = e.breaker_panel();
        assert_eq!(
            panel.annealer.state,
            crate::breaker::BreakerState::Open,
            "chaos failures opened the annealer breaker"
        );
        let m = e.metrics().snapshot();
        assert!(m.chaos_backend_failures_injected > 0);
        assert!(m.backend_attempt_failures > 0);
        assert_eq!(m.solved_total, 0);
    }

    #[test]
    fn pinned_requests_never_degrade_to_another_backend() {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.chaos = ChaosConfig {
            seed: 1,
            backend_failure_rate: 1.0,
            ..ChaosConfig::NONE
        };
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let mut req = SolveRequest::new(paper_example(), 2);
        req.backend = Some(Backend::Milp);
        let err = e.solve(&req).unwrap_err();
        // The pinned backend failed, so the request fails — it is never
        // silently answered by a different backend.
        assert!(matches!(err, Reject::BackendUnavailable { .. }), "{err}");
    }

    #[test]
    fn chaos_worker_panic_escapes_solve_with_the_marker_message() {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.chaos = ChaosConfig {
            seed: 123,
            worker_panic_rate: 1.0,
            ..ChaosConfig::NONE
        };
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let req = SolveRequest::new(paper_example(), 9);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.solve(&req)));
        let msg = crate::chaos::panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains(crate::chaos::CHAOS_PANIC_MESSAGE), "{msg}");
        assert_eq!(e.metrics().snapshot().chaos_panics_injected, 1);
    }

    #[test]
    fn corrupted_answers_are_caught_repaired_and_reconciled() {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 50;
        cfg.device.num_gauges = 5;
        cfg.chaos = ChaosConfig {
            seed: 21,
            sample_corruption_rate: 1.0,
            ..ChaosConfig::NONE
        };
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let problem = paper_example();
        for seed in 0..8 {
            let r = e
                .solve(&SolveRequest::new(problem.clone(), seed))
                .expect("every corruption is repairable");
            // The served answer is verified-feasible with a truthful cost.
            let sel = Selection::new(r.selection.iter().map(|&p| PlanId(p)).collect());
            assert!(problem.validate_selection(&sel).is_ok());
            assert_eq!(r.cost, problem.selection_cost(&sel));
            assert!(
                r.route_reason.contains("integrity: repaired"),
                "repair is visible to the client: {}",
                r.route_reason
            );
        }
        // Every injected corruption was flagged and repaired; none leaked.
        let m = e.metrics().snapshot();
        assert_eq!(m.chaos_corruptions_injected, 8);
        assert_eq!(m.integrity_violations, 8);
        assert_eq!(m.integrity_repairs, 8);
        assert_eq!(m.integrity_rejects, 0);
        assert_eq!(m.solved_total, 8);
    }

    #[test]
    fn corruption_without_repair_is_a_typed_500() {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 50;
        cfg.device.num_gauges = 5;
        cfg.integrity_repair = false;
        cfg.chaos = ChaosConfig {
            seed: 21,
            sample_corruption_rate: 1.0,
            ..ChaosConfig::NONE
        };
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        for seed in 0..4 {
            let err = e
                .solve(&SolveRequest::new(paper_example(), seed))
                .unwrap_err();
            assert!(matches!(err, Reject::IntegrityViolation { .. }), "{err}");
            assert_eq!(err.http_status(), 500);
        }
        let m = e.metrics().snapshot();
        assert_eq!(m.chaos_corruptions_injected, 4);
        assert_eq!(m.integrity_violations, 4);
        assert_eq!(m.integrity_rejects, 4);
        assert_eq!(m.integrity_repairs, 0);
        assert_eq!(m.solved_total, 0, "withheld answers are not solves");
    }

    #[test]
    fn verify_gate_is_transparent_on_clean_solves() {
        let gated = engine();
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 50;
        cfg.device.num_gauges = 5;
        cfg.verify_gate = false;
        let ungated = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        for seed in 0..5 {
            let a = gated
                .solve(&SolveRequest::new(paper_example(), seed))
                .unwrap();
            let b = ungated
                .solve(&SolveRequest::new(paper_example(), seed))
                .unwrap();
            assert_eq!(a.selection, b.selection);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.route_reason, b.route_reason);
        }
        let m = gated.metrics().snapshot();
        assert_eq!(
            m.integrity_violations, 0,
            "clean answers never trip the gate"
        );
        // The annealer read accounting reached /metrics.
        assert_eq!(m.reads_verified_clean + m.reads_repaired, 5 * 50);
        assert_eq!(m.chain_majority_repairs + m.chain_tie_breaks, 0);
    }

    fn packing_engine(max_tenants: usize) -> SolveEngine {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(4, 4));
        cfg.device.num_reads = 30;
        cfg.device.num_gauges = 3;
        cfg.packing = true;
        cfg.packing_max_tenants = max_tenants;
        SolveEngine::new(cfg, Arc::new(Metrics::default()))
    }

    fn solo_twin(e: &SolveEngine) -> SolveEngine {
        let mut cfg = e.config().clone();
        cfg.packing = false;
        SolveEngine::new(cfg, Arc::new(Metrics::default()))
    }

    #[test]
    fn packed_answers_are_bit_identical_to_solo_answers() {
        let e = packing_engine(16);
        let reqs: Vec<SolveRequest> = (0..4)
            .map(|i| SolveRequest::new(paper_example(), 100 + i))
            .collect();
        let refs: Vec<&SolveRequest> = reqs.iter().collect();
        let packed = e.solve_packed(&refs);
        let solo = solo_twin(&e);
        for (req, result) in reqs.iter().zip(&packed) {
            let p = result
                .as_ref()
                .expect("clean tenants pack")
                .as_ref()
                .unwrap();
            assert_eq!(p.packed_tenants, 4);
            assert!(
                p.route_reason.contains("[packed: 4 tenants]"),
                "{}",
                p.route_reason
            );
            let s = solo.solve(req).unwrap();
            assert_eq!(p.selection, s.selection);
            assert_eq!(p.cost, s.cost);
            assert_eq!(p.reads, s.reads);
            assert_eq!(p.qubits_used, s.qubits_used);
            assert_eq!(p.device_time_us, s.device_time_us);
        }
        let m = e.metrics().snapshot();
        assert_eq!(m.packed_batches, 1);
        assert_eq!(m.tenants_packed, 4);
    }

    #[test]
    fn packing_declines_overflow_and_leaves_it_to_the_solo_path() {
        // The paper example's TRIAD footprint is one unit cell, so a 2×2
        // chip hosts exactly 4 tenants; the fifth is declined and keeps a
        // `None` slot for the solo path.
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 30;
        cfg.device.num_gauges = 3;
        cfg.packing = true;
        cfg.packing_max_tenants = 16;
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let reqs: Vec<SolveRequest> = (0..5)
            .map(|i| SolveRequest::new(paper_example(), i))
            .collect();
        let refs: Vec<&SolveRequest> = reqs.iter().collect();
        let packed = e.solve_packed(&refs);
        assert_eq!(packed.iter().filter(|r| r.is_some()).count(), 4);
        assert!(packed[4].is_none(), "overflow tenant is left for solo");
        let m = e.metrics().snapshot();
        assert_eq!(m.packing_declines, 1);
        assert_eq!(m.tenants_packed, 4);
        assert!((m.tenants_per_cycle - 4.0).abs() < 1e-12);
    }

    #[test]
    fn max_tenants_caps_the_cycle() {
        let e = packing_engine(2);
        let reqs: Vec<SolveRequest> = (0..4)
            .map(|i| SolveRequest::new(paper_example(), i))
            .collect();
        let refs: Vec<&SolveRequest> = reqs.iter().collect();
        let packed = e.solve_packed(&refs);
        assert_eq!(packed.iter().filter(|r| r.is_some()).count(), 2);
        assert_eq!(e.metrics().snapshot().tenants_packed, 2);
    }

    #[test]
    fn pinned_and_chaos_marked_requests_never_pack() {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(4, 4));
        cfg.device.num_reads = 30;
        cfg.device.num_gauges = 3;
        cfg.packing = true;
        cfg.chaos = ChaosConfig {
            seed: 5,
            worker_panic_rate: 0.5,
            ..ChaosConfig::NONE
        };
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let mut pinned = SolveRequest::new(paper_example(), 1000);
        pinned.backend = Some(Backend::Annealer);
        let panicky = (0..16)
            .map(|s| SolveRequest::new(paper_example(), s))
            .find(|r| e.config().chaos.worker_panics(r.seed))
            .expect("rate 0.5 marks some seed");
        let mut clean = (2000..)
            .filter(|&s| {
                !e.config().chaos.worker_panics(s)
                    && !e.config().chaos.backend_fails(s, Backend::Annealer)
            })
            .map(|s| SolveRequest::new(paper_example(), s));
        let clean_a = clean.next().unwrap();
        let clean_b = clean.next().unwrap();
        let reqs = [&pinned, &panicky, &clean_a, &clean_b];
        let packed = e.solve_packed(&reqs);
        assert!(packed[0].is_none(), "pinned requests keep their contract");
        assert!(
            packed[1].is_none(),
            "chaos-marked seeds panic on the solo path"
        );
        assert!(packed[2].is_some() && packed[3].is_some());
    }

    #[test]
    fn single_packable_tenant_stays_solo() {
        let e = packing_engine(16);
        let a = SolveRequest::new(paper_example(), 1);
        let mut b = SolveRequest::new(paper_example(), 2);
        b.backend = Some(Backend::Milp);
        let packed = e.solve_packed(&[&a, &b]);
        assert!(packed.iter().all(|r| r.is_none()));
        assert_eq!(e.metrics().snapshot().packed_batches, 0);
    }

    #[test]
    fn mixed_protocols_pack_with_the_leader_group_only() {
        let e = packing_engine(16);
        let a = SolveRequest::new(paper_example(), 1);
        let mut b = SolveRequest::new(paper_example(), 2);
        b.reads = Some(10);
        let c = SolveRequest::new(paper_example(), 3);
        let packed = e.solve_packed(&[&a, &b, &c]);
        assert!(packed[0].is_some() && packed[2].is_some());
        assert!(packed[1].is_none(), "different (reads, gauges) solves solo");
    }

    #[test]
    fn corrupted_tenants_are_gated_without_poisoning_batchmates() {
        // Corruption rate 1: every tenant's answer is mangled after the
        // composite run and must be repaired by the per-tenant gate.
        let mut cfg = EngineConfig::new(ChimeraGraph::new(4, 4));
        cfg.device.num_reads = 30;
        cfg.device.num_gauges = 3;
        cfg.packing = true;
        cfg.packing_max_tenants = 16;
        cfg.chaos = ChaosConfig {
            seed: 21,
            sample_corruption_rate: 1.0,
            ..ChaosConfig::NONE
        };
        let e = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        let problem = paper_example();
        let reqs: Vec<SolveRequest> = (0..3)
            .map(|i| SolveRequest::new(problem.clone(), i))
            .collect();
        let refs: Vec<&SolveRequest> = reqs.iter().collect();
        let packed = e.solve_packed(&refs);
        for result in &packed {
            let r = result.as_ref().expect("packable").as_ref().unwrap();
            let sel = Selection::new(r.selection.iter().map(|&p| PlanId(p)).collect());
            assert!(problem.validate_selection(&sel).is_ok());
            assert_eq!(r.cost, problem.selection_cost(&sel));
            assert!(
                r.route_reason.contains("integrity: repaired"),
                "{}",
                r.route_reason
            );
        }
        let m = e.metrics().snapshot();
        assert_eq!(m.integrity_violations, 3);
        assert_eq!(m.integrity_repairs, 3);
        assert_eq!(m.tenants_packed, 3);
    }

    #[test]
    fn inert_chaos_answers_are_identical_to_a_clean_engine() {
        let clean = engine();
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 50;
        cfg.device.num_gauges = 5;
        cfg.chaos = ChaosConfig {
            seed: 777,
            ..ChaosConfig::NONE
        };
        let inert = SolveEngine::new(cfg, Arc::new(Metrics::default()));
        for seed in 0..5 {
            let a = clean
                .solve(&SolveRequest::new(paper_example(), seed))
                .unwrap();
            let b = inert
                .solve(&SolveRequest::new(paper_example(), seed))
                .unwrap();
            assert_eq!(a.selection, b.selection);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.backend, b.backend);
        }
    }
}
