//! The HTTP front-end: binds a listener, runs the nonblocking event-loop
//! tier ([`crate::event_loop`], DESIGN.md §13), and bridges parsed requests
//! onto the admission queue.
//!
//! Endpoints:
//!
//! * `POST /solve` — body is a JSON [`crate::api::SolveRequest`]; answers a
//!   [`crate::api::SolveResponse`] or a typed [`Reject`] with its status.
//! * `GET /metrics` — JSON counters, latency histograms, cache statistics,
//!   per-backend circuit-breaker state.
//! * `GET /healthz` — liveness probe.
//! * `POST /shutdown` — graceful drain: stop admissions, answer everything
//!   already queued, then exit [`Server::wait`].
//!
//! Connections are HTTP/1.1 keep-alive with pipelining: one connection can
//! carry many requests, and the solve path never blocks an event-loop
//! thread — the handler submits to the queue with a callback
//! [`crate::queue::Responder`] and the worker's answer is posted back to the
//! owning shard through its completion channel.
//!
//! Connection hardening (DESIGN.md §9) is enforced by the event loop:
//! byte/count caps and whole-request wall-clock deadlines on reads,
//! idle/write-stall timeouts, a connection cap shedding with `503` +
//! `Retry-After`, and `catch_unwind` around every handler dispatch.

use crate::api::{Reject, SolveRequest};
use crate::engine::{EngineConfig, SolveEngine};
use crate::event_loop::{Action, Completer, EventLoop, Handler, LoopConfig, Response};
use crate::http::{HttpLimits, Request};
use crate::metrics::{lock_recover, Metrics};
use crate::queue::{QueueConfig, Responder, SolveQueue};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Full server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine (device, cache, router, breakers, chaos) configuration.
    pub engine: EngineConfig,
    /// Admission queue configuration.
    pub queue: QueueConfig,
    /// Byte/count caps applied while reading each request. The `deadline`
    /// field is ignored here; the per-request deadline comes from
    /// [`ServerConfig::request_deadline_ms`].
    pub http: HttpLimits,
    /// Whole-request wall-clock deadline, milliseconds (0 disables): the
    /// budget for reading one request off the socket, slowloris defense.
    pub request_deadline_ms: u64,
    /// Keep-alive idle timeout and write-stall timeout, milliseconds: a
    /// connection with no request in flight, or a client not reading its
    /// response, is closed after this long.
    pub io_timeout_ms: u64,
    /// Concurrent-connection cap; accepts beyond it are shed with a typed
    /// `503` and `Retry-After`.
    pub max_connections: usize,
    /// Event-loop accept shards (threads); each polls its own clone of the
    /// listener.
    pub accept_shards: usize,
    /// Maximum pipelined requests in flight per connection before the
    /// event loop stops reading from it (backpressure).
    pub max_pipeline: usize,
}

impl ServerConfig {
    /// Loopback defaults around the given engine configuration.
    pub fn new(engine: EngineConfig) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine,
            queue: QueueConfig::default(),
            http: HttpLimits::default(),
            request_deadline_ms: 10_000,
            io_timeout_ms: 10_000,
            max_connections: 256,
            accept_shards: 2,
            max_pipeline: 32,
        }
    }
}

/// A running solve server.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<SolveQueue>,
    engine: Arc<SolveEngine>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    event_loop: Mutex<Option<EventLoop>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds the listener, spawns the event-loop shards and the worker pool.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(Metrics::default());
        let engine = Arc::new(SolveEngine::new(config.engine, Arc::clone(&metrics)));
        let queue = SolveQueue::start(Arc::clone(&engine), config.queue);
        let shutdown = Arc::new(AtomicBool::new(false));

        let handler = Arc::new(SolveHandler {
            queue: Arc::clone(&queue),
            engine: Arc::clone(&engine),
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
        });
        let event_loop = EventLoop::spawn(
            listener,
            LoopConfig {
                shards: config.accept_shards,
                http: config.http,
                request_deadline_ms: config.request_deadline_ms,
                idle_timeout_ms: config.io_timeout_ms,
                max_connections: config.max_connections,
                max_pipeline: config.max_pipeline,
            },
            handler,
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        )?;

        Ok(Server {
            addr,
            queue,
            engine,
            metrics,
            shutdown,
            event_loop: Mutex::new(Some(event_loop)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics handle.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The engine (tests inspect cache statistics through it).
    pub fn engine(&self) -> &Arc<SolveEngine> {
        &self.engine
    }

    /// True once a shutdown has been requested (via [`Server::shutdown`] or
    /// `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, then drains and joins
    /// everything: the event-loop shards stop accepting, answer every
    /// request already in flight (final responses carry
    /// `connection: close`), then the worker pool drains and joins.
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(event_loop) =
            lock_recover(&self.event_loop, &self.metrics.lock_poison_recoveries).take()
        {
            event_loop.wake();
            event_loop.join();
        }
        // Shards only exit once every connection has flushed, so every
        // in-flight answer is already on the wire; this join is for the
        // worker threads themselves.
        self.queue.shutdown();
    }

    /// Requests a graceful shutdown and waits for the drain to finish.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wait();
    }
}

/// Routes parsed requests to the solve queue and the introspection
/// endpoints. Runs on event-loop threads: everything here is non-blocking —
/// the solve path answers later through the queue's callback responder.
struct SolveHandler {
    queue: Arc<SolveQueue>,
    engine: Arc<SolveEngine>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
}

impl Handler for SolveHandler {
    fn handle(&self, request: Request, completer: Completer) -> Action {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Action::Respond(Response::json(200, r#"{"status":"ok"}"#)),
            ("GET", "/metrics") => {
                let payload = serde_json::json!({
                    "service": self.metrics.snapshot(),
                    "cache": self.engine.cache_stats(),
                    "breakers": self.engine.breaker_panel(),
                });
                Action::Respond(Response::json(200, payload.to_string()))
            }
            ("POST", "/solve") => self.handle_solve(request, completer),
            ("POST", "/shutdown") => {
                // The drain pass the shard runs after this dispatch flushes
                // the acknowledgement with `connection: close`; wait() wakes
                // the remaining shards.
                self.shutdown.store(true, Ordering::SeqCst);
                Action::Respond(Response::json(200, r#"{"status":"draining"}"#).closing())
            }
            ("GET", "/solve") | ("POST", "/healthz") | ("POST", "/metrics") => {
                Action::Respond(Response::json(405, r#"{"error":"method not allowed"}"#))
            }
            _ => Action::Respond(Response::json(404, r#"{"error":"not found"}"#)),
        }
    }
}

impl SolveHandler {
    fn handle_solve(&self, request: Request, completer: Completer) -> Action {
        Metrics::inc(&self.metrics.requests_total);
        let solve_request: SolveRequest = match serde_json::from_slice(&request.body) {
            Ok(r) => r,
            Err(e) => {
                Metrics::inc(&self.metrics.rejected_invalid);
                let reject = Reject::InvalidRequest {
                    detail: e.to_string(),
                };
                return Action::Respond(Response::reject(&reject));
            }
        };
        let responder = Responder::callback(move |result| {
            completer.complete(queue_answer(result));
        });
        match self.queue.submit_with(solve_request, responder) {
            Ok(()) => Action::Pending,
            Err((responder, reject)) => {
                // Answer through the responder we got back: it carries the
                // completer, and `queue_answer` attaches the Retry-After
                // hint to back-pressure rejections.
                responder.respond(Err(reject));
                Action::Pending
            }
        }
    }
}

/// Renders a queue answer (worker result or typed rejection) as a response.
/// Back-pressure rejections carry a `Retry-After` hint, exactly like the
/// accept-time connection shed: a full queue is a transient condition the
/// client should retry, not an error.
fn queue_answer(result: Result<crate::api::SolveResponse, Reject>) -> Response {
    match result {
        Ok(response) => {
            let body = serde_json::to_string(&response)
                .unwrap_or_else(|_| r#"{"error":"serialisation failure"}"#.to_string());
            Response::json(200, body)
        }
        Err(reject) => {
            let response = Response::reject(&reject);
            if matches!(reject, Reject::QueueFull { .. }) {
                response.with_header("retry-after", "1")
            } else {
                response
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::roundtrip;
    use mqo_chimera::graph::ChimeraGraph;

    fn small_server() -> Server {
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        Server::start(ServerConfig::new(engine)).expect("bind loopback")
    }

    const TINY: &[u8] =
        br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7}"#;

    #[test]
    fn healthz_metrics_and_unknown_paths() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
        let (status, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert!(v["service"]["requests_total"].is_u64());
        assert!(v["cache"]["capacity"].is_u64());
        let (status, _) = roundtrip(addr, "GET", "/nope", b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, "GET", "/solve", b"").unwrap();
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn solve_round_trip_with_cache_hit_on_repeat() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let cold: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(cold["cost"], 2.0);
        assert_eq!(cold["backend"], "annealer");
        assert_eq!(cold["cache_hit"], false);

        let (status, body) = roundtrip(addr, "POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200);
        let warm: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(warm["cache_hit"], true);
        assert_eq!(warm["selection"], cold["selection"]);
        assert_eq!(warm["cost"], cold["cost"]);

        let (_, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        let m: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(m["service"]["solved_total"], 2);
        assert_eq!(m["service"]["cache_hits"], 1);
        assert_eq!(m["cache"]["hits"], 1);
        assert_eq!(m["cache"]["misses"], 1);
        server.shutdown();
    }

    #[test]
    fn solve_round_trips_over_one_keep_alive_connection() {
        let server = small_server();
        let addr = server.local_addr();
        let mut client = crate::http::KeepAliveClient::new(addr);
        let (status, cold) = client.request("POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cold));
        let (status, warm) = client.request("POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200);
        let cold: serde_json::Value = serde_json::from_slice(&cold).unwrap();
        let warm: serde_json::Value = serde_json::from_slice(&warm).unwrap();
        assert_eq!(warm["selection"], cold["selection"]);
        assert_eq!(warm["cache_hit"], true);
        assert_eq!(client.connects(), 1, "both requests shared one connection");
        let snapshot = server.metrics().snapshot();
        assert!(snapshot.connections_reused >= 1);
        server.shutdown();
    }

    #[test]
    fn pipelined_solves_answer_in_request_order() {
        let server = small_server();
        let addr = server.local_addr();
        let mut client = crate::http::KeepAliveClient::new(addr);
        let batch: Vec<(&str, &str, &[u8])> = vec![
            ("POST", "/solve", TINY),
            ("GET", "/healthz", b""),
            ("POST", "/solve", TINY),
        ];
        let responses = client.request_batch(&batch).unwrap();
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].0, 200);
        assert_eq!(responses[1].1, br#"{"status":"ok"}"#.to_vec());
        let first: serde_json::Value = serde_json::from_slice(&responses[0].1).unwrap();
        let third: serde_json::Value = serde_json::from_slice(&responses[2].1).unwrap();
        assert_eq!(first["cost"], 2.0);
        assert_eq!(third["selection"], first["selection"]);
        assert!(server.metrics().snapshot().pipelined_requests >= 1);
        server.shutdown();
    }

    #[test]
    fn malformed_bodies_answer_400_not_a_hang() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/solve", b"{not json").unwrap();
        assert_eq!(status, 400);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["reason"], "invalid_request");
        // Builder-invalid problem (saving inside one query): also 400.
        let bad = br#"{"problem": {"queries": [[2,4]], "savings": [[0,1,5.0]]}}"#;
        let (status, _) = roundtrip(addr, "POST", "/solve", bad).unwrap();
        assert_eq!(status, 400);
        assert_eq!(server.metrics().snapshot().rejected_invalid, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains_and_releases_wait() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/shutdown", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"draining"}"#);
        server.wait();
        assert!(server.shutdown_requested());
    }

    #[test]
    fn metrics_report_breaker_state_per_backend() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        for backend in ["annealer", "milp", "hill_climbing"] {
            assert_eq!(v["breakers"][backend]["state"], "closed", "{backend}");
            assert_eq!(v["breakers"][backend]["opened_total"], 0);
        }
        server.shutdown();
    }

    #[test]
    fn slow_clients_get_a_typed_408_within_the_deadline() {
        use std::io::{BufRead, BufReader, Write};
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.request_deadline_ms = 100;
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();

        // Half a request line, then stall: the server must answer 408, not
        // hold the connection open forever.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /solve HT").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(&stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 408"), "{status_line}");
        assert_eq!(server.metrics().snapshot().rejected_request_timeout, 1);
        drop(reader);
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn oversized_request_lines_get_a_typed_431() {
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.http.max_line_bytes = 128;
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();
        let long_path = format!("/{}", "a".repeat(4096));
        let (status, body) = roundtrip(addr, "GET", &long_path, b"").unwrap();
        assert_eq!(status, 431, "{}", String::from_utf8_lossy(&body));
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["reason"], "header_limit");
        assert_eq!(server.metrics().snapshot().rejected_header_limit, 1);
        server.shutdown();
    }

    #[test]
    fn queue_full_answers_429_with_retry_after_like_the_shed_path() {
        use std::io::{BufRead, BufReader, Write};
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.queue = crate::queue::QueueConfig {
            depth: 1,
            workers: 1,
            batch_size: 1,
            default_deadline_ms: 0,
        };
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();

        // A long solve occupies the single worker; the next request fills
        // the depth-1 queue; the one after that must be rejected 429.
        let slow: &[u8] = br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7, "reads": 4000, "gauges": 1}"#;
        let send = |body: &[u8]| {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            let head = format!(
                "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            s.write_all(head.as_bytes()).unwrap();
            s.write_all(body).unwrap();
            s.flush().unwrap();
            s
        };
        let read_response = |stream: &std::net::TcpStream| {
            let mut reader = BufReader::new(stream);
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            let mut saw_retry_after = false;
            loop {
                let mut header = String::new();
                if reader.read_line(&mut header).unwrap() == 0 {
                    break;
                }
                if header.trim_end().is_empty() {
                    break;
                }
                if header.to_ascii_lowercase().starts_with("retry-after:") {
                    saw_retry_after = true;
                }
            }
            (status_line, saw_retry_after)
        };
        let wait_until = |ready: &dyn Fn() -> bool, what: &str| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while !ready() {
                assert!(std::time::Instant::now() < deadline, "timed out: {what}");
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        let a = send(slow);
        wait_until(
            &|| server.metrics().snapshot().batches_dispatched >= 1,
            "worker claims the first request",
        );
        let b = send(slow);
        wait_until(
            &|| server.metrics().snapshot().queue_depth >= 1,
            "second request queues",
        );
        let c = send(TINY);
        let (status, retry_after) = read_response(&c);
        assert!(status.starts_with("HTTP/1.1 429"), "{status}");
        assert!(retry_after, "429 advertises Retry-After like the 503 shed");
        assert_eq!(server.metrics().snapshot().rejected_queue_full, 1);
        // The occupying requests still answer normally.
        for held in [a, b] {
            let (status, _) = read_response(&held);
            assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        }
        server.shutdown();
    }

    #[test]
    fn connections_beyond_the_cap_are_shed_with_retry_after() {
        use std::io::{BufRead, BufReader, Write};
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.max_connections = 1;
        config.request_deadline_ms = 2_000;
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();

        // Occupy the single slot with a connection that never finishes its
        // request, then connect again: the second must be shed.
        let mut holder = std::net::TcpStream::connect(addr).unwrap();
        holder.write_all(b"POST /solve HT").unwrap();
        holder.flush().unwrap();
        // Give the accept loop a beat to admit the holder.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while server.metrics().snapshot().connections_active < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "holder never admitted"
            );
            std::thread::sleep(Duration::from_millis(2));
        }

        let shed = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(&shed);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 503"), "{status_line}");
        let mut saw_retry_after = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header).unwrap() == 0 {
                break;
            }
            if header.trim_end().is_empty() {
                break;
            }
            if header.to_ascii_lowercase().starts_with("retry-after:") {
                saw_retry_after = true;
            }
        }
        assert!(saw_retry_after, "shed response advertises Retry-After");
        assert_eq!(server.metrics().snapshot().connections_shed, 1);
        drop(reader);
        drop(shed);
        drop(holder);
        server.shutdown();
    }
}
