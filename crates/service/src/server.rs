//! The HTTP front-end: binds a listener, parses requests with the
//! [`crate::http`] subset, and bridges connections onto the admission
//! queue.
//!
//! Endpoints:
//!
//! * `POST /solve` — body is a JSON [`crate::api::SolveRequest`]; answers a
//!   [`crate::api::SolveResponse`] or a typed [`Reject`] with its status.
//! * `GET /metrics` — JSON counters, latency histograms, cache statistics.
//! * `GET /healthz` — liveness probe.
//! * `POST /shutdown` — graceful drain: stop admissions, answer everything
//!   already queued, then exit [`Server::wait`].

use crate::api::{Reject, SolveRequest};
use crate::engine::{EngineConfig, SolveEngine};
use crate::http::{read_request, write_json_response, HttpError, Request};
use crate::metrics::Metrics;
use crate::queue::{QueueConfig, SolveQueue};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Full server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine (device, cache, router) configuration.
    pub engine: EngineConfig,
    /// Admission queue configuration.
    pub queue: QueueConfig,
    /// Cap on request body size, bytes.
    pub max_body: usize,
}

impl ServerConfig {
    /// Loopback defaults around the given engine configuration.
    pub fn new(engine: EngineConfig) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine,
            queue: QueueConfig::default(),
            max_body: 1 << 20,
        }
    }
}

/// A running solve server.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<SolveQueue>,
    engine: Arc<SolveEngine>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds the listener, spawns the accept loop and the worker pool.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(Metrics::default());
        let engine = Arc::new(SolveEngine::new(config.engine, Arc::clone(&metrics)));
        let queue = SolveQueue::start(Arc::clone(&engine), config.queue);
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let max_body = config.max_body;
            std::thread::Builder::new()
                .name("mqo-accept".to_string())
                .spawn(move || loop {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let queue = Arc::clone(&queue);
                            let engine = Arc::clone(&engine);
                            let metrics = Arc::clone(&metrics);
                            let shutdown = Arc::clone(&shutdown);
                            // One thread per connection: connections are
                            // short-lived (Connection: close) and the real
                            // concurrency limit is the bounded queue behind.
                            let _ = std::thread::Builder::new()
                                .name("mqo-conn".to_string())
                                .spawn(move || {
                                    handle_connection(
                                        stream, &queue, &engine, &metrics, &shutdown, max_body,
                                    );
                                });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => return,
                    }
                })?
        };

        Ok(Server {
            addr,
            queue,
            engine,
            metrics,
            shutdown,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics handle.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The engine (tests inspect cache statistics through it).
    pub fn engine(&self) -> &Arc<SolveEngine> {
        &self.engine
    }

    /// True once a shutdown has been requested (via [`Server::shutdown`] or
    /// `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, then drains and joins
    /// everything: stops accepting connections, answers every queued
    /// request, joins the workers.
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(handle) = self
            .accept_handle
            .lock()
            .expect("accept handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
        self.queue.shutdown();
        // Give connection threads that already hold an answer a beat to
        // finish writing it before the caller exits the process.
        std::thread::sleep(Duration::from_millis(50));
    }

    /// Requests a graceful shutdown and waits for the drain to finish.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wait();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    queue: &SolveQueue,
    engine: &SolveEngine,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    max_body: usize,
) {
    // Accepted sockets may inherit the listener's nonblocking mode on some
    // platforms; request handling is plain blocking I/O with a cap.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));

    let request = match read_request(&mut stream, max_body) {
        Ok(r) => r,
        Err(e) => {
            let status = match e {
                HttpError::BodyTooLarge { .. } => 413,
                _ => 400,
            };
            let body = reject_body(&Reject::InvalidRequest {
                detail: e.to_string(),
            });
            let _ = write_json_response(&mut stream, status, &body);
            return;
        }
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_json_response(&mut stream, 200, r#"{"status":"ok"}"#);
        }
        ("GET", "/metrics") => {
            let payload = serde_json::json!({
                "service": metrics.snapshot(),
                "cache": engine.cache_stats(),
            });
            let _ = write_json_response(&mut stream, 200, &payload.to_string());
        }
        ("POST", "/solve") => handle_solve(&mut stream, request, queue, metrics),
        ("POST", "/shutdown") => {
            let _ = write_json_response(&mut stream, 200, r#"{"status":"draining"}"#);
            shutdown.store(true, Ordering::SeqCst);
        }
        ("GET", "/solve") | ("POST", "/healthz") | ("POST", "/metrics") => {
            let _ = write_json_response(&mut stream, 405, r#"{"error":"method not allowed"}"#);
        }
        _ => {
            let _ = write_json_response(&mut stream, 404, r#"{"error":"not found"}"#);
        }
    }
}

fn handle_solve(stream: &mut TcpStream, request: Request, queue: &SolveQueue, metrics: &Metrics) {
    Metrics::inc(&metrics.requests_total);
    let solve_request: SolveRequest = match serde_json::from_slice(&request.body) {
        Ok(r) => r,
        Err(e) => {
            Metrics::inc(&metrics.rejected_invalid);
            let reject = Reject::InvalidRequest {
                detail: e.to_string(),
            };
            let _ = write_json_response(stream, reject.http_status(), &reject_body(&reject));
            return;
        }
    };
    let receiver = match queue.submit(solve_request) {
        Ok(rx) => rx,
        Err(reject) => {
            let _ = write_json_response(stream, reject.http_status(), &reject_body(&reject));
            return;
        }
    };
    // The worker pool always answers admitted jobs (shutdown drains); a
    // recv error would mean the pool died, which we surface as 503.
    match receiver.recv() {
        Ok(Ok(response)) => {
            let body = serde_json::to_string(&response)
                .unwrap_or_else(|_| r#"{"error":"serialisation failure"}"#.to_string());
            let _ = write_json_response(stream, 200, &body);
        }
        Ok(Err(reject)) => {
            let _ = write_json_response(stream, reject.http_status(), &reject_body(&reject));
        }
        Err(_) => {
            let _ = write_json_response(stream, 503, &reject_body(&Reject::ShuttingDown));
        }
    }
}

fn reject_body(reject: &Reject) -> String {
    serde_json::to_string(reject).unwrap_or_else(|_| r#"{"reason":"internal"}"#.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::roundtrip;
    use mqo_chimera::graph::ChimeraGraph;

    fn small_server() -> Server {
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        Server::start(ServerConfig::new(engine)).expect("bind loopback")
    }

    const TINY: &[u8] =
        br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7}"#;

    #[test]
    fn healthz_metrics_and_unknown_paths() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
        let (status, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert!(v["service"]["requests_total"].is_u64());
        assert!(v["cache"]["capacity"].is_u64());
        let (status, _) = roundtrip(addr, "GET", "/nope", b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, "GET", "/solve", b"").unwrap();
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn solve_round_trip_with_cache_hit_on_repeat() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let cold: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(cold["cost"], 2.0);
        assert_eq!(cold["backend"], "annealer");
        assert_eq!(cold["cache_hit"], false);

        let (status, body) = roundtrip(addr, "POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200);
        let warm: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(warm["cache_hit"], true);
        assert_eq!(warm["selection"], cold["selection"]);
        assert_eq!(warm["cost"], cold["cost"]);

        let (_, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        let m: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(m["service"]["solved_total"], 2);
        assert_eq!(m["service"]["cache_hits"], 1);
        assert_eq!(m["cache"]["hits"], 1);
        assert_eq!(m["cache"]["misses"], 1);
        server.shutdown();
    }

    #[test]
    fn malformed_bodies_answer_400_not_a_hang() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/solve", b"{not json").unwrap();
        assert_eq!(status, 400);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["reason"], "invalid_request");
        // Builder-invalid problem (saving inside one query): also 400.
        let bad = br#"{"problem": {"queries": [[2,4]], "savings": [[0,1,5.0]]}}"#;
        let (status, _) = roundtrip(addr, "POST", "/solve", bad).unwrap();
        assert_eq!(status, 400);
        assert_eq!(server.metrics().snapshot().rejected_invalid, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains_and_releases_wait() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/shutdown", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"draining"}"#);
        server.wait();
        assert!(server.shutdown_requested());
    }
}
