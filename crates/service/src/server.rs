//! The HTTP front-end: binds a listener, parses requests with the
//! [`crate::http`] subset, and bridges connections onto the admission
//! queue.
//!
//! Endpoints:
//!
//! * `POST /solve` — body is a JSON [`crate::api::SolveRequest`]; answers a
//!   [`crate::api::SolveResponse`] or a typed [`Reject`] with its status.
//! * `GET /metrics` — JSON counters, latency histograms, cache statistics,
//!   per-backend circuit-breaker state.
//! * `GET /healthz` — liveness probe.
//! * `POST /shutdown` — graceful drain: stop admissions, answer everything
//!   already queued, then exit [`Server::wait`].
//!
//! Connection hardening (DESIGN.md §9): sockets carry read *and* write
//! timeouts, every request is read under byte/count caps and a whole-request
//! wall-clock deadline ([`crate::http::HttpLimits`]), the accept loop sheds
//! connections beyond [`ServerConfig::max_connections`] with a `503` +
//! `Retry-After`, and each connection thread runs inside `catch_unwind` so a
//! handler panic never kills the process.

use crate::api::{Reject, SolveRequest};
use crate::engine::{EngineConfig, SolveEngine};
use crate::http::{
    read_request, write_json_response, write_json_response_with, HttpError, HttpLimits, Request,
};
use crate::metrics::{lock_recover, Metrics};
use crate::queue::{QueueConfig, SolveQueue};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Full server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine (device, cache, router, breakers, chaos) configuration.
    pub engine: EngineConfig,
    /// Admission queue configuration.
    pub queue: QueueConfig,
    /// Byte/count caps applied while reading each request. The `deadline`
    /// field is ignored here; the per-request deadline comes from
    /// [`ServerConfig::request_deadline_ms`].
    pub http: HttpLimits,
    /// Whole-request wall-clock deadline, milliseconds (0 disables): the
    /// budget for reading one request off the socket, slowloris defense.
    pub request_deadline_ms: u64,
    /// Socket read/write timeout, milliseconds: no single I/O operation —
    /// including writing the response to a stalled client — blocks longer.
    pub io_timeout_ms: u64,
    /// Concurrent-connection cap; accepts beyond it are shed with a typed
    /// `503` and `Retry-After` instead of spawning a thread.
    pub max_connections: usize,
}

impl ServerConfig {
    /// Loopback defaults around the given engine configuration.
    pub fn new(engine: EngineConfig) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine,
            queue: QueueConfig::default(),
            http: HttpLimits::default(),
            request_deadline_ms: 10_000,
            io_timeout_ms: 10_000,
            max_connections: 256,
        }
    }
}

/// A running solve server.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<SolveQueue>,
    engine: Arc<SolveEngine>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds the listener, spawns the accept loop and the worker pool.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(Metrics::default());
        let engine = Arc::new(SolveEngine::new(config.engine, Arc::clone(&metrics)));
        let queue = SolveQueue::start(Arc::clone(&engine), config.queue);
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let http = config.http;
            let request_deadline_ms = config.request_deadline_ms;
            let io_timeout_ms = config.io_timeout_ms;
            let max_connections = config.max_connections.max(1);
            std::thread::Builder::new()
                .name("mqo-accept".to_string())
                .spawn(move || loop {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Shed beyond the cap before spawning anything:
                            // the guard below is what bounds thread count.
                            if metrics.connections_active.load(Ordering::Relaxed)
                                >= max_connections as u64
                            {
                                Metrics::inc(&metrics.connections_shed);
                                shed_connection(stream, max_connections, io_timeout_ms);
                                continue;
                            }
                            let guard = ConnGuard::admit(Arc::clone(&metrics));
                            let queue = Arc::clone(&queue);
                            let engine = Arc::clone(&engine);
                            let metrics = Arc::clone(&metrics);
                            let shutdown = Arc::clone(&shutdown);
                            // One thread per connection: connections are
                            // short-lived (Connection: close) and the real
                            // concurrency limit is the cap above plus the
                            // bounded queue behind.
                            let _ = std::thread::Builder::new()
                                .name("mqo-conn".to_string())
                                .spawn(move || {
                                    let _guard = guard;
                                    let caught = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            handle_connection(
                                                stream,
                                                &queue,
                                                &engine,
                                                &metrics,
                                                &shutdown,
                                                &http,
                                                request_deadline_ms,
                                                io_timeout_ms,
                                            );
                                        }),
                                    );
                                    if caught.is_err() {
                                        Metrics::inc(&metrics.conn_panics_caught);
                                    }
                                });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => return,
                    }
                })?
        };

        Ok(Server {
            addr,
            queue,
            engine,
            metrics,
            shutdown,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics handle.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The engine (tests inspect cache statistics through it).
    pub fn engine(&self) -> &Arc<SolveEngine> {
        &self.engine
    }

    /// True once a shutdown has been requested (via [`Server::shutdown`] or
    /// `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, then drains and joins
    /// everything: stops accepting connections, answers every queued
    /// request, joins the workers.
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(handle) =
            lock_recover(&self.accept_handle, &self.metrics.lock_poison_recoveries).take()
        {
            let _ = handle.join();
        }
        self.queue.shutdown();
        // Give connection threads that already hold an answer a beat to
        // finish writing it before the caller exits the process.
        std::thread::sleep(Duration::from_millis(50));
    }

    /// Requests a graceful shutdown and waits for the drain to finish.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wait();
    }
}

/// RAII admission token of one connection: increments the
/// `connections_active` gauge on admit, decrements it on drop — including
/// the unwind path of a panicking handler, so the cap cannot leak shut.
struct ConnGuard {
    metrics: Arc<Metrics>,
}

impl ConnGuard {
    fn admit(metrics: Arc<Metrics>) -> ConnGuard {
        metrics.connections_active.fetch_add(1, Ordering::Relaxed);
        ConnGuard { metrics }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.metrics
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
    }
}

/// Answers a connection shed by the cap: typed `503 overloaded` with a
/// `Retry-After` hint, under a short write timeout so a slow client cannot
/// stall the accept loop's helper thread.
fn shed_connection(mut stream: TcpStream, max_connections: usize, io_timeout_ms: u64) {
    let _ = std::thread::Builder::new()
        .name("mqo-shed".to_string())
        .spawn(move || {
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(io_timeout_ms.max(1))));
            let body = reject_body(&Reject::Overloaded { max_connections });
            let _ = write_json_response_with(&mut stream, 503, &body, &[("retry-after", "1")]);
        });
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    queue: &SolveQueue,
    engine: &SolveEngine,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    http: &HttpLimits,
    request_deadline_ms: u64,
    io_timeout_ms: u64,
) {
    // Accepted sockets may inherit the listener's nonblocking mode on some
    // platforms; request handling is plain blocking I/O with caps. Both
    // directions are bounded: reads by the per-read timeout (re-armed
    // against the request deadline), writes by the write timeout — a client
    // that accepts its answer one byte a minute cannot pin this thread.
    let _ = stream.set_nonblocking(false);
    let io_timeout = Duration::from_millis(io_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));

    let limits = HttpLimits {
        deadline: (request_deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(request_deadline_ms)),
        ..*http
    };
    let request = match read_request(&mut stream, &limits) {
        Ok(r) => r,
        Err(HttpError::Io(_)) => return, // dead socket: nothing to answer
        Err(e) => {
            let reject = match &e {
                HttpError::Timeout => {
                    Metrics::inc(&metrics.rejected_request_timeout);
                    Reject::RequestTimeout {
                        deadline_ms: request_deadline_ms,
                    }
                }
                HttpError::LineTooLong { .. } | HttpError::TooManyHeaders { .. } => {
                    Metrics::inc(&metrics.rejected_header_limit);
                    Reject::HeaderLimit {
                        detail: e.to_string(),
                    }
                }
                _ => Reject::InvalidRequest {
                    detail: e.to_string(),
                },
            };
            let _ = write_json_response(&mut stream, e.http_status(), &reject_body(&reject));
            return;
        }
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_json_response(&mut stream, 200, r#"{"status":"ok"}"#);
        }
        ("GET", "/metrics") => {
            let payload = serde_json::json!({
                "service": metrics.snapshot(),
                "cache": engine.cache_stats(),
                "breakers": engine.breaker_panel(),
            });
            let _ = write_json_response(&mut stream, 200, &payload.to_string());
        }
        ("POST", "/solve") => handle_solve(&mut stream, request, queue, metrics),
        ("POST", "/shutdown") => {
            let _ = write_json_response(&mut stream, 200, r#"{"status":"draining"}"#);
            shutdown.store(true, Ordering::SeqCst);
        }
        ("GET", "/solve") | ("POST", "/healthz") | ("POST", "/metrics") => {
            let _ = write_json_response(&mut stream, 405, r#"{"error":"method not allowed"}"#);
        }
        _ => {
            let _ = write_json_response(&mut stream, 404, r#"{"error":"not found"}"#);
        }
    }
}

fn handle_solve(stream: &mut TcpStream, request: Request, queue: &SolveQueue, metrics: &Metrics) {
    Metrics::inc(&metrics.requests_total);
    let solve_request: SolveRequest = match serde_json::from_slice(&request.body) {
        Ok(r) => r,
        Err(e) => {
            Metrics::inc(&metrics.rejected_invalid);
            let reject = Reject::InvalidRequest {
                detail: e.to_string(),
            };
            let _ = write_json_response(stream, reject.http_status(), &reject_body(&reject));
            return;
        }
    };
    let receiver = match queue.submit(solve_request) {
        Ok(rx) => rx,
        Err(reject) => {
            // Back-pressure rejections carry a Retry-After hint, exactly
            // like the accept-time connection shed: a full queue is a
            // transient condition the client should retry, not an error.
            let headers: &[(&str, &str)] = if matches!(reject, Reject::QueueFull { .. }) {
                &[("retry-after", "1")]
            } else {
                &[]
            };
            let _ = write_json_response_with(
                stream,
                reject.http_status(),
                &reject_body(&reject),
                headers,
            );
            return;
        }
    };
    // The worker pool always answers admitted jobs (shutdown drains); a
    // recv error would mean the pool died, which we surface as 503.
    match receiver.recv() {
        Ok(Ok(response)) => {
            let body = serde_json::to_string(&response)
                .unwrap_or_else(|_| r#"{"error":"serialisation failure"}"#.to_string());
            let _ = write_json_response(stream, 200, &body);
        }
        Ok(Err(reject)) => {
            let _ = write_json_response(stream, reject.http_status(), &reject_body(&reject));
        }
        Err(_) => {
            let _ = write_json_response(stream, 503, &reject_body(&Reject::ShuttingDown));
        }
    }
}

fn reject_body(reject: &Reject) -> String {
    serde_json::to_string(reject).unwrap_or_else(|_| r#"{"reason":"internal"}"#.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::roundtrip;
    use mqo_chimera::graph::ChimeraGraph;

    fn small_server() -> Server {
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        Server::start(ServerConfig::new(engine)).expect("bind loopback")
    }

    const TINY: &[u8] =
        br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7}"#;

    #[test]
    fn healthz_metrics_and_unknown_paths() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
        let (status, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert!(v["service"]["requests_total"].is_u64());
        assert!(v["cache"]["capacity"].is_u64());
        let (status, _) = roundtrip(addr, "GET", "/nope", b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, "GET", "/solve", b"").unwrap();
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn solve_round_trip_with_cache_hit_on_repeat() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let cold: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(cold["cost"], 2.0);
        assert_eq!(cold["backend"], "annealer");
        assert_eq!(cold["cache_hit"], false);

        let (status, body) = roundtrip(addr, "POST", "/solve", TINY).unwrap();
        assert_eq!(status, 200);
        let warm: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(warm["cache_hit"], true);
        assert_eq!(warm["selection"], cold["selection"]);
        assert_eq!(warm["cost"], cold["cost"]);

        let (_, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        let m: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(m["service"]["solved_total"], 2);
        assert_eq!(m["service"]["cache_hits"], 1);
        assert_eq!(m["cache"]["hits"], 1);
        assert_eq!(m["cache"]["misses"], 1);
        server.shutdown();
    }

    #[test]
    fn malformed_bodies_answer_400_not_a_hang() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/solve", b"{not json").unwrap();
        assert_eq!(status, 400);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["reason"], "invalid_request");
        // Builder-invalid problem (saving inside one query): also 400.
        let bad = br#"{"problem": {"queries": [[2,4]], "savings": [[0,1,5.0]]}}"#;
        let (status, _) = roundtrip(addr, "POST", "/solve", bad).unwrap();
        assert_eq!(status, 400);
        assert_eq!(server.metrics().snapshot().rejected_invalid, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains_and_releases_wait() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "POST", "/shutdown", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"draining"}"#);
        server.wait();
        assert!(server.shutdown_requested());
    }

    #[test]
    fn metrics_report_breaker_state_per_backend() {
        let server = small_server();
        let addr = server.local_addr();
        let (status, body) = roundtrip(addr, "GET", "/metrics", b"").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        for backend in ["annealer", "milp", "hill_climbing"] {
            assert_eq!(v["breakers"][backend]["state"], "closed", "{backend}");
            assert_eq!(v["breakers"][backend]["opened_total"], 0);
        }
        server.shutdown();
    }

    #[test]
    fn slow_clients_get_a_typed_408_within_the_deadline() {
        use std::io::{BufRead, BufReader, Write};
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.request_deadline_ms = 100;
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();

        // Half a request line, then stall: the server must answer 408, not
        // hold the connection open forever.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /solve HT").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(&stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 408"), "{status_line}");
        assert_eq!(server.metrics().snapshot().rejected_request_timeout, 1);
        drop(reader);
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn oversized_request_lines_get_a_typed_431() {
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.http.max_line_bytes = 128;
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();
        let long_path = format!("/{}", "a".repeat(4096));
        let (status, body) = roundtrip(addr, "GET", &long_path, b"").unwrap();
        assert_eq!(status, 431, "{}", String::from_utf8_lossy(&body));
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["reason"], "header_limit");
        assert_eq!(server.metrics().snapshot().rejected_header_limit, 1);
        server.shutdown();
    }

    #[test]
    fn queue_full_answers_429_with_retry_after_like_the_shed_path() {
        use std::io::{BufRead, BufReader, Write};
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.queue = crate::queue::QueueConfig {
            depth: 1,
            workers: 1,
            batch_size: 1,
            default_deadline_ms: 0,
        };
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();

        // A long solve occupies the single worker; the next request fills
        // the depth-1 queue; the one after that must be rejected 429.
        let slow: &[u8] = br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7, "reads": 4000, "gauges": 1}"#;
        let send = |body: &[u8]| {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            let head = format!(
                "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            s.write_all(head.as_bytes()).unwrap();
            s.write_all(body).unwrap();
            s.flush().unwrap();
            s
        };
        let read_response = |stream: &std::net::TcpStream| {
            let mut reader = BufReader::new(stream);
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            let mut saw_retry_after = false;
            loop {
                let mut header = String::new();
                if reader.read_line(&mut header).unwrap() == 0 {
                    break;
                }
                if header.trim_end().is_empty() {
                    break;
                }
                if header.to_ascii_lowercase().starts_with("retry-after:") {
                    saw_retry_after = true;
                }
            }
            (status_line, saw_retry_after)
        };
        let wait_until = |ready: &dyn Fn() -> bool, what: &str| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while !ready() {
                assert!(std::time::Instant::now() < deadline, "timed out: {what}");
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        let a = send(slow);
        wait_until(
            &|| server.metrics().snapshot().batches_dispatched >= 1,
            "worker claims the first request",
        );
        let b = send(slow);
        wait_until(
            &|| server.metrics().snapshot().queue_depth >= 1,
            "second request queues",
        );
        let c = send(TINY);
        let (status, retry_after) = read_response(&c);
        assert!(status.starts_with("HTTP/1.1 429"), "{status}");
        assert!(retry_after, "429 advertises Retry-After like the 503 shed");
        assert_eq!(server.metrics().snapshot().rejected_queue_full, 1);
        // The occupying requests still answer normally.
        for held in [a, b] {
            let (status, _) = read_response(&held);
            assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        }
        server.shutdown();
    }

    #[test]
    fn connections_beyond_the_cap_are_shed_with_retry_after() {
        use std::io::{BufRead, BufReader, Write};
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        let mut config = ServerConfig::new(engine);
        config.max_connections = 1;
        config.request_deadline_ms = 2_000;
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();

        // Occupy the single slot with a connection that never finishes its
        // request, then connect again: the second must be shed.
        let mut holder = std::net::TcpStream::connect(addr).unwrap();
        holder.write_all(b"POST /solve HT").unwrap();
        holder.flush().unwrap();
        // Give the accept loop a beat to admit the holder.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while server.metrics().snapshot().connections_active < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "holder never admitted"
            );
            std::thread::sleep(Duration::from_millis(2));
        }

        let shed = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(&shed);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 503"), "{status_line}");
        let mut saw_retry_after = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header).unwrap() == 0 {
                break;
            }
            if header.trim_end().is_empty() {
                break;
            }
            if header.to_ascii_lowercase().starts_with("retry-after:") {
                saw_retry_after = true;
            }
        }
        assert!(saw_retry_after, "shed response advertises Retry-After");
        assert_eq!(server.metrics().snapshot().connections_shed, 1);
        drop(reader);
        drop(shed);
        drop(holder);
        server.shutdown();
    }
}
