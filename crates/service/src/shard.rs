//! The structure-sharded router front (`mqo_router`, DESIGN.md §13–§14).
//!
//! A thin front process that consistently shards `POST /solve` requests
//! across N `mqo_serve` *cells* by the instance's QUBO structure
//! (`Qubo::structure_hash`, which is weight-independent): structurally
//! identical instances always land on the same cell, so each cell's
//! embedding cache sees the full hit-rate benefit of its shard instead of
//! every cell re-deriving every embedding.
//!
//! The router reuses the nonblocking event-loop front-end
//! ([`crate::event_loop`]) for its own client side; forwarding happens on a
//! small pool of forwarder threads over *pooled keep-alive upstream
//! connections* ([`crate::http::KeepAliveClient`]), so neither accepting nor
//! forwarding blocks the poll loop.
//!
//! Per-cell resilience (PR 9 + the PR 10 failover layer):
//!
//! * every cell has its own [`CircuitBreaker`]; an unreachable cell is
//!   skipped after `failure_threshold` consecutive failures and its traffic
//!   falls through to the next healthy cell (consistent order: the probe
//!   sequence starts at `hash % cells` and walks forward);
//! * **zero-loss failover**: a connection reset, timeout, or 5xx from a
//!   dying cell transparently replays the request on the next healthy cell
//!   — safe because solves are deterministic by `(problem, seed)`, so a
//!   replayed answer is bit-identical to the one the dying cell would have
//!   produced. Replays stay inside the client's remaining deadline budget:
//!   the router subtracts its own elapsed time and forwards a strictly
//!   decreasing `deadline_ms` upstream ([`next_deadline`]);
//! * every in-flight request sits in a **bounded per-shard journal**
//!   ([`FailoverJournal`] semantics): admission beyond the per-shard bound
//!   answers a typed 429 instead of queueing without limit, and the journal
//!   draining to zero is the drain invariant the kill-chaos tests assert;
//! * idempotent repeats (same structure, weights, seed, reads, gauges,
//!   backend) can be answered from a small router-side **response cache**
//!   without touching a cell — the cached bytes are the exact bytes of the
//!   first answer;
//! * cells **quarantined** by the fleet supervisor
//!   ([`crate::supervisor::Supervisor`]) are skipped like open breakers:
//!   the fall-through walk *is* the shard-range remap;
//! * when a cell recovers (its breaker closes after being open), the router
//!   replays a bounded set of recent *exemplar* requests whose primary
//!   shard is that cell — warming the respawned cell's embedding cache
//!   before live traffic returns to it;
//! * any HTTP answer from a cell — including typed rejections — counts as
//!   cell transport health; only transport errors trip the breaker, but
//!   5xx answers are treated as replayable (the last one is passed through
//!   verbatim if no cell does better);
//! * a final `503 backend_unavailable` carries an honest `Retry-After`
//!   computed from the soonest breaker re-probe, not a constant.

use crate::api::{Reject, SolveRequest};
use crate::breaker::{BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker};
use crate::event_loop::{Action, Completer, EventLoop, Handler, LoopConfig, Response};
use crate::http::{HttpLimits, KeepAliveClient, Request};
use crate::metrics::{lock_recover, Metrics};
use crate::supervisor::{Supervisor, SupervisorConfig};
use mqo_core::logical::LogicalMapping;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Failover policy of the router (DESIGN.md §14).
#[derive(Debug, Clone, Copy)]
pub struct FailoverConfig {
    /// Replay window for requests that carry no `deadline_ms` of their own,
    /// milliseconds. Requests with a client deadline use that instead.
    pub budget_ms: u64,
    /// Outstanding requests allowed per shard (primary cell); admission
    /// beyond this answers a typed 429. `0` disables the bound.
    pub journal_depth: usize,
    /// Maximum passes over the fleet before giving up (at least 1). Each
    /// pass tries every admissible cell once.
    pub rounds: u32,
    /// Pause between passes, milliseconds — gives a respawning cell or a
    /// cooling breaker a moment before the next pass.
    pub round_backoff_ms: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            budget_ms: 2_000,
            journal_depth: 64,
            rounds: 4,
            round_backoff_ms: 25,
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct MqoRouterConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Upstream `mqo_serve` cell addresses (at least one).
    pub cells: Vec<String>,
    /// Epsilon used to build the logical QUBO for the shard key; must match
    /// the cells' engine epsilon for the key to mirror their cache key.
    pub epsilon: f64,
    /// Forwarder threads (each owns pooled upstream connections).
    pub forwarders: usize,
    /// Upstream connect/read/write timeout, milliseconds.
    pub io_timeout_ms: u64,
    /// Per-cell circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Recent requests retained per structure hash for cache warm-up on
    /// cell recovery (0 disables warm-up).
    pub warm_exemplars: usize,
    /// Response-cache entries for idempotent repeats (0 disables).
    pub response_cache: usize,
    /// Replay/journal policy.
    pub failover: FailoverConfig,
    /// Spawn and supervise the cells as child processes (respawn on death,
    /// quarantine on crash loop). `None` routes to externally managed
    /// cells exactly as before.
    pub supervisor: Option<SupervisorConfig>,
    /// Client-side byte/count caps.
    pub http: HttpLimits,
    /// Client-side whole-request read deadline, milliseconds.
    pub request_deadline_ms: u64,
    /// Client-side idle / write-stall timeout, milliseconds.
    pub idle_timeout_ms: u64,
    /// Client-side connection cap.
    pub max_connections: usize,
    /// Event-loop accept shards.
    pub accept_shards: usize,
    /// Pipelined requests per client connection cap.
    pub max_pipeline: usize,
}

impl MqoRouterConfig {
    /// Loopback defaults over the given cells.
    #[must_use]
    pub fn new(cells: Vec<String>) -> Self {
        MqoRouterConfig {
            addr: "127.0.0.1:0".to_string(),
            cells,
            epsilon: 0.25,
            forwarders: 4,
            io_timeout_ms: 10_000,
            breaker: BreakerConfig::default(),
            warm_exemplars: 32,
            response_cache: 128,
            failover: FailoverConfig::default(),
            supervisor: None,
            http: HttpLimits::default(),
            request_deadline_ms: 10_000,
            idle_timeout_ms: 10_000,
            max_connections: 256,
            accept_shards: 2,
            max_pipeline: 32,
        }
    }
}

/// The shard key of one instance: the structure hash of its logical QUBO.
/// Weight-independent, so instances differing only in costs/savings values
/// still map to the same cell (and hit its cached embedding).
#[must_use]
pub fn structure_key(problem: &mqo_core::problem::MqoProblem, epsilon: f64) -> u64 {
    LogicalMapping::new(problem, epsilon)
        .qubo()
        .structure_hash()
}

/// The forwarded deadline for the next replay attempt: the client's budget
/// minus the time the router already spent, additionally capped one below
/// the previously forwarded deadline so the sequence is **strictly
/// decreasing across hops** even when attempts land in the same
/// millisecond. `None` means the budget is exhausted — stop replaying.
#[must_use]
pub fn next_deadline(budget_ms: u64, elapsed_ms: u64, previous: Option<u64>) -> Option<u64> {
    let remaining = budget_ms.checked_sub(elapsed_ms)?;
    let capped = match previous {
        Some(prev) => remaining.min(prev.saturating_sub(1)),
        None => remaining,
    };
    if capped == 0 {
        None
    } else {
        Some(capped)
    }
}

/// One upstream cell: address, connection pool, breaker, counters.
struct Cell {
    addr: SocketAddr,
    display: String,
    pool: Mutex<Vec<KeepAliveClient>>,
    breaker: CircuitBreaker,
    forwarded: AtomicU64,
    failures: AtomicU64,
    warmups: AtomicU64,
}

/// Serialisable per-cell health reported under the router's `/metrics`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CellSnapshot {
    /// The cell's address.
    pub addr: String,
    /// Breaker state and transition counters.
    pub breaker: BreakerSnapshot,
    /// Requests this cell answered.
    pub forwarded: u64,
    /// Transport failures talking to this cell.
    pub failures: u64,
    /// Warm-up requests replayed into this cell after recovery.
    pub warmups: u64,
    /// Idle pooled keep-alive connections to this cell.
    pub pooled: usize,
    /// Whether the supervisor quarantined this cell (shard range remapped).
    #[serde(default)]
    pub quarantined: bool,
    /// Requests currently journaled against this cell's shard.
    #[serde(default)]
    pub journal_outstanding: usize,
}

/// The bounded per-shard journal of in-flight forwards. An entry lives
/// from event-loop admission to response completion (RAII: the guard pops
/// it even if a forwarder panics), so `outstanding` is an honest gauge of
/// requests the router has accepted but not yet answered — the drain
/// invariant of the kill-chaos tests is every shard returning to zero.
struct FailoverJournal {
    /// Per-shard ticket → structure hash of the outstanding request.
    shards: Vec<Mutex<HashMap<u64, u64>>>,
    depth: usize,
    next_ticket: AtomicU64,
    lock_recoveries: AtomicU64,
}

impl FailoverJournal {
    fn new(shards: usize, depth: usize) -> Self {
        FailoverJournal {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            depth,
            next_ticket: AtomicU64::new(0),
            lock_recoveries: AtomicU64::new(0),
        }
    }

    /// Admits one request against `shard`, or `None` when the shard is at
    /// its journal bound (answer 429, don't queue without limit).
    fn admit(self: &Arc<Self>, shard: usize, hash: u64) -> Option<JournalGuard> {
        if self.depth == 0 {
            return Some(JournalGuard {
                journal: Arc::clone(self),
                shard,
                ticket: None,
            });
        }
        let mut entries = lock_recover(&self.shards[shard], &self.lock_recoveries);
        if entries.len() >= self.depth {
            return None;
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        entries.insert(ticket, hash);
        Some(JournalGuard {
            journal: Arc::clone(self),
            shard,
            ticket: Some(ticket),
        })
    }

    fn outstanding(&self, shard: usize) -> usize {
        lock_recover(&self.shards[shard], &self.lock_recoveries).len()
    }
}

/// RAII journal entry: dropping it (response completed, or the forward
/// path unwound) removes the request from its shard's journal.
struct JournalGuard {
    journal: Arc<FailoverJournal>,
    shard: usize,
    ticket: Option<u64>,
}

impl Drop for JournalGuard {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket {
            lock_recover(
                &self.journal.shards[self.shard],
                &self.journal.lock_recoveries,
            )
            .remove(&ticket);
        }
    }
}

#[derive(Default)]
struct ResponseCacheInner {
    /// Canonical request bytes → (response body, recency stamp).
    map: HashMap<Vec<u8>, (String, u64)>,
    /// Recency stamp → key, oldest first; kept in lockstep with `map`.
    recency: BTreeMap<u64, Vec<u8>>,
    tick: u64,
}

/// A bounded LRU of successful `/solve` answers keyed by the *canonical*
/// request bytes (the request re-serialised without its `deadline_ms`, so
/// the key covers structure, weights, seed, reads, gauges, and backend
/// pin — everything the answer depends on, nothing it doesn't). Safe
/// because solves are deterministic: a hit returns the exact bytes the
/// fleet produced for the first occurrence. Same counter/poison pattern as
/// [`crate::cache::EmbeddingCache`]: a poisoned lock invalidates the whole
/// cache rather than trusting interrupted LRU bookkeeping.
struct ResponseCache {
    inner: Mutex<ResponseCacheInner>,
    capacity: usize,
}

impl ResponseCache {
    fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(ResponseCacheInner::default()),
            capacity,
        }
    }

    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn lock(&self) -> MutexGuard<'_, ResponseCacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut inner = poisoned.into_inner();
                inner.map.clear();
                inner.recency.clear();
                self.inner.clear_poison();
                inner
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<String> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let (body, stamp) = inner.map.get_mut(key)?;
        let old = std::mem::replace(stamp, tick);
        let body = body.clone();
        inner.recency.remove(&old);
        inner.recency.insert(tick, key.to_vec());
        Some(body)
    }

    fn insert(&self, key: &[u8], body: &str) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((_, old)) = inner.map.insert(key.to_vec(), (body.to_string(), tick)) {
            inner.recency.remove(&old);
        }
        inner.recency.insert(tick, key.to_vec());
        while inner.map.len() > self.capacity {
            let Some((&oldest, _)) = inner.recency.iter().next() else {
                break;
            };
            let Some(victim) = inner.recency.remove(&oldest) else {
                break;
            };
            inner.map.remove(&victim);
        }
    }

    fn len(&self) -> usize {
        self.lock().map.len()
    }
}

/// Shared forwarding state: the cells, the failover machinery, and the
/// warm-up exemplar store.
struct Fleet {
    cells: Vec<Cell>,
    io_timeout: Duration,
    /// Most-recent canonical request body per structure hash, bounded FIFO;
    /// replayed into a cell when its breaker closes after being open.
    exemplars: Mutex<VecDeque<(u64, Vec<u8>)>>,
    warm_exemplars: usize,
    failover: FailoverConfig,
    /// Per-cell quarantine flags; shared with the supervisor when one is
    /// running, all-false otherwise.
    quarantined: Arc<Vec<AtomicBool>>,
    journal: Arc<FailoverJournal>,
    response_cache: ResponseCache,
    metrics: Arc<Metrics>,
    lock_recoveries: AtomicU64,
}

impl Fleet {
    /// Primary cell of a shard key, before breaker fall-through.
    fn primary(&self, hash: u64) -> usize {
        (hash % self.cells.len() as u64) as usize
    }

    /// Remembers `body` as the exemplar for `hash` (replacing any previous
    /// one), evicting the oldest entry beyond the cap.
    fn remember(&self, hash: u64, body: &[u8]) {
        if self.warm_exemplars == 0 {
            return;
        }
        let mut exemplars = lock_recover(&self.exemplars, &self.lock_recoveries);
        if let Some(pos) = exemplars.iter().position(|(h, _)| *h == hash) {
            exemplars.remove(pos);
        }
        exemplars.push_back((hash, body.to_vec()));
        while exemplars.len() > self.warm_exemplars {
            exemplars.pop_front();
        }
    }

    /// `Retry-After` seconds for a request no cell could take: the soonest
    /// moment any open breaker will admit a probe again (rounded up; at
    /// least 1 s). Falls back to 1 s when nothing is measurably open.
    fn retry_after_secs(&self) -> u64 {
        self.cells
            .iter()
            .filter_map(|cell| cell.breaker.remaining_open())
            .min()
            .map(|remaining| (remaining.as_millis() as u64).div_ceil(1_000).max(1))
            .unwrap_or(1)
    }

    /// Forwards one `/solve` request to the shard's cell, transparently
    /// replaying on the next healthy cell after a transport failure or a
    /// 5xx, within the request's deadline budget. Non-5xx HTTP answers are
    /// passed through verbatim.
    fn forward(&self, hash: u64, request: &SolveRequest, admitted: Instant) -> Response {
        // Canonical bytes: the request without its deadline. Response-cache
        // key, warm-up exemplar, and the upstream body for deadline-less
        // requests are all this serialisation.
        let canonical = {
            let mut canon = request.clone();
            canon.deadline_ms = None;
            match serde_json::to_string(&canon) {
                Ok(json) => json.into_bytes(),
                Err(e) => {
                    return Response::reject(&Reject::InternalError {
                        detail: format!("cannot re-serialise request: {e}"),
                    })
                }
            }
        };
        if self.response_cache.enabled() {
            if let Some(body) = self.response_cache.get(&canonical) {
                Metrics::inc(&self.metrics.router_cache_hits);
                return Response::json(200, body);
            }
            Metrics::inc(&self.metrics.router_cache_misses);
        }

        let n = self.cells.len();
        let budget = request.deadline_ms;
        // The replay window: the client's own deadline when it sent one,
        // the configured failover budget otherwise.
        let window_ms = budget.unwrap_or(self.failover.budget_ms);
        let mut last_forwarded: Option<u64> = None;
        let mut last_5xx: Option<(u16, String)> = None;
        let mut failed_attempts = 0u32;
        let mut budget_exhausted = false;
        let mut detail = String::new();
        let mut note = |entry: String| {
            if detail.len() < 1_024 {
                if !detail.is_empty() {
                    detail.push_str("; ");
                }
                detail.push_str(&entry);
            }
        };

        'rounds: for round in 0..self.failover.rounds.max(1) {
            if round > 0 {
                let elapsed = admitted.elapsed().as_millis() as u64;
                if elapsed.saturating_add(self.failover.round_backoff_ms) >= window_ms {
                    budget_exhausted = true;
                    break 'rounds;
                }
                std::thread::sleep(Duration::from_millis(self.failover.round_backoff_ms));
            }
            for step in 0..n {
                let idx = (self.primary(hash) + step) % n;
                let cell = &self.cells[idx];
                if self.quarantined[idx].load(Ordering::SeqCst) {
                    note(format!("{}: quarantined", cell.display));
                    continue;
                }
                if !cell.breaker.admit() {
                    note(format!("{}: breaker open", cell.display));
                    continue;
                }
                // Budget check per attempt; the forwarded deadline strictly
                // decreases across hops.
                let elapsed = admitted.elapsed().as_millis() as u64;
                let forwarded_deadline = match budget {
                    Some(b) => match next_deadline(b, elapsed, last_forwarded) {
                        Some(d) => {
                            last_forwarded = Some(d);
                            Some(d)
                        }
                        None => {
                            budget_exhausted = true;
                            break 'rounds;
                        }
                    },
                    None => {
                        if elapsed >= window_ms {
                            budget_exhausted = true;
                            break 'rounds;
                        }
                        None
                    }
                };
                let body: Vec<u8> = match forwarded_deadline {
                    Some(deadline) => {
                        let mut fwd = request.clone();
                        fwd.deadline_ms = Some(deadline);
                        match serde_json::to_string(&fwd) {
                            Ok(json) => json.into_bytes(),
                            Err(_) => canonical.clone(),
                        }
                    }
                    None => canonical.clone(),
                };
                let was_unhealthy = cell.breaker.state() != BreakerState::Closed
                    || cell.breaker.snapshot().consecutive_failures > 0;
                match self.try_cell(cell, &body) {
                    Ok((status, resp_body)) => {
                        cell.breaker.record_success();
                        let resp_body = String::from_utf8(resp_body)
                            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
                        if status >= 500 {
                            // The cell answered, but with a server-side
                            // failure — replayable on another cell; keep the
                            // answer to pass through verbatim if nothing
                            // does better.
                            failed_attempts += 1;
                            note(format!("{}: upstream {status}", cell.display));
                            last_5xx = Some((status, resp_body));
                            continue;
                        }
                        Metrics::inc(&cell.forwarded);
                        self.remember(hash, &canonical);
                        if was_unhealthy {
                            self.warm_cell(idx);
                        }
                        if failed_attempts > 0 {
                            Metrics::inc(&self.metrics.failovers);
                        }
                        if status == 200 {
                            self.response_cache.insert(&canonical, &resp_body);
                        }
                        return Response::json(status, resp_body);
                    }
                    Err(e) => {
                        cell.breaker.record_failure();
                        Metrics::inc(&cell.failures);
                        failed_attempts += 1;
                        note(format!("{}: {e}", cell.display));
                    }
                }
            }
        }

        if budget_exhausted {
            Metrics::inc(&self.metrics.deadline_budget_exhausted);
        }
        // A 5xx a cell actually produced beats a synthetic router error —
        // pass the last one through verbatim.
        if let Some((status, body)) = last_5xx {
            return Response::json(status, body);
        }
        if budget_exhausted {
            return Response::reject(&Reject::DeadlineExceeded {
                deadline_ms: window_ms,
            });
        }
        let retry_after = self.retry_after_secs();
        Response::reject(&Reject::BackendUnavailable { detail })
            .with_header("retry-after", retry_after.to_string())
    }

    /// One attempt against one cell over a pooled keep-alive connection;
    /// the client itself retries once on a stale pooled connection.
    fn try_cell(&self, cell: &Cell, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let mut client = lock_recover(&cell.pool, &self.lock_recoveries)
            .pop()
            .unwrap_or_else(|| KeepAliveClient::with_timeout(cell.addr, Some(self.io_timeout)));
        let result = client.request("POST", "/solve", body);
        if result.is_ok() {
            lock_recover(&cell.pool, &self.lock_recoveries).push(client);
        }
        result
    }

    /// Replays the exemplars whose primary shard is `idx` into that cell,
    /// warming its embedding cache after a respawn. Best-effort: replay
    /// failures are ignored (live traffic will re-trip the breaker).
    fn warm_cell(&self, idx: usize) {
        if self.warm_exemplars == 0 {
            return;
        }
        let mine: Vec<Vec<u8>> = lock_recover(&self.exemplars, &self.lock_recoveries)
            .iter()
            .filter(|(hash, _)| self.primary(*hash) == idx)
            .map(|(_, body)| body.clone())
            .collect();
        if mine.is_empty() {
            return;
        }
        let cell = &self.cells[idx];
        let mut client = KeepAliveClient::with_timeout(cell.addr, Some(self.io_timeout));
        for body in mine {
            if client.request("POST", "/solve", &body).is_err() {
                return;
            }
            Metrics::inc(&cell.warmups);
        }
    }

    fn cell_snapshots(&self) -> Vec<CellSnapshot> {
        self.cells
            .iter()
            .enumerate()
            .map(|(idx, cell)| CellSnapshot {
                addr: cell.display.clone(),
                breaker: cell.breaker.snapshot(),
                forwarded: cell.forwarded.load(Ordering::Relaxed),
                failures: cell.failures.load(Ordering::Relaxed),
                warmups: cell.warmups.load(Ordering::Relaxed),
                pooled: lock_recover(&cell.pool, &self.lock_recoveries).len(),
                quarantined: self.quarantined[idx].load(Ordering::SeqCst),
                journal_outstanding: self.journal.outstanding(idx),
            })
            .collect()
    }
}

/// A solve forward in flight from the event loop to a forwarder thread.
/// Carries its journal guard: the entry pops when the job is dropped,
/// however the forward ends.
struct ForwardJob {
    hash: u64,
    request: SolveRequest,
    admitted: Instant,
    _journal: JournalGuard,
    completer: Completer,
}

/// Routes client requests: introspection answers inline, `/solve` is
/// dispatched to the forwarder pool.
struct RouterHandler {
    fleet: Arc<Fleet>,
    forward_tx: mpsc::Sender<ForwardJob>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    supervisor: Option<Arc<Supervisor>>,
    epsilon: f64,
}

impl Handler for RouterHandler {
    fn handle(&self, request: Request, completer: Completer) -> Action {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Action::Respond(Response::json(
                200,
                format!(r#"{{"status":"ok","cells":{}}}"#, self.fleet.cells.len()),
            )),
            ("GET", "/metrics") => {
                let supervisor = self.supervisor.as_ref().map(|s| s.snapshots());
                let payload = serde_json::json!({
                    "service": self.metrics.snapshot(),
                    "router": serde_json::json!({
                        "cells": self.fleet.cell_snapshots(),
                        "response_cache_len": self.fleet.response_cache.len(),
                        "journal_depth": self.fleet.failover.journal_depth,
                    }),
                    "supervisor": supervisor,
                });
                Action::Respond(Response::json(200, payload.to_string()))
            }
            ("POST", "/solve") => {
                Metrics::inc(&self.metrics.requests_total);
                let solve_request: SolveRequest = match serde_json::from_slice(&request.body) {
                    Ok(r) => r,
                    Err(e) => {
                        Metrics::inc(&self.metrics.rejected_invalid);
                        return Action::Respond(Response::reject(&Reject::InvalidRequest {
                            detail: e.to_string(),
                        }));
                    }
                };
                let hash = structure_key(&solve_request.problem, self.epsilon);
                let shard = self.fleet.primary(hash);
                let Some(guard) = self.fleet.journal.admit(shard, hash) else {
                    Metrics::inc(&self.metrics.rejected_queue_full);
                    return Action::Respond(
                        Response::reject(&Reject::QueueFull {
                            depth: self.fleet.failover.journal_depth,
                        })
                        .with_header("retry-after", "1"),
                    );
                };
                match self.forward_tx.send(ForwardJob {
                    hash,
                    request: solve_request,
                    admitted: Instant::now(),
                    _journal: guard,
                    completer,
                }) {
                    Ok(()) => Action::Pending,
                    Err(mpsc::SendError(job)) => {
                        // Forwarder pool gone: only happens mid-teardown.
                        job.completer
                            .complete(Response::reject(&Reject::ShuttingDown));
                        Action::Pending
                    }
                }
            }
            ("POST", "/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                Action::Respond(Response::json(200, r#"{"status":"draining"}"#).closing())
            }
            ("GET", "/solve") | ("POST", "/healthz") | ("POST", "/metrics") => {
                Action::Respond(Response::json(405, r#"{"error":"method not allowed"}"#))
            }
            _ => Action::Respond(Response::json(404, r#"{"error":"not found"}"#)),
        }
    }
}

/// A running structure-sharded router (optionally supervising its cells).
pub struct MqoRouter {
    addr: SocketAddr,
    fleet: Arc<Fleet>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    event_loop: Mutex<Option<EventLoop>>,
    forwarders: Mutex<Vec<JoinHandle<()>>>,
    supervisor: Option<Arc<Supervisor>>,
    supervisor_report: Mutex<Vec<String>>,
}

impl std::fmt::Debug for MqoRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MqoRouter")
            .field("addr", &self.addr)
            .field("cells", &self.fleet.cells.len())
            .field("supervised", &self.supervisor.is_some())
            .finish()
    }
}

impl MqoRouter {
    /// Binds the listener, optionally spawns and readies the supervised
    /// fleet, resolves the cells, then spawns the event-loop shards and
    /// the forwarder pool.
    pub fn start(config: MqoRouterConfig) -> io::Result<MqoRouter> {
        if config.cells.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one cell",
            ));
        }
        let metrics = Arc::new(Metrics::default());

        // Supervision first: cells must exist (or be quarantined) before
        // the router starts answering.
        let mut supervisor = None;
        let quarantined: Arc<Vec<AtomicBool>>;
        if let Some(sup_config) = config.supervisor.clone() {
            if sup_config.cells != config.cells {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "supervisor cell list must match the router cell list",
                ));
            }
            let sup =
                Supervisor::start(sup_config, Arc::clone(&metrics)).map_err(io::Error::other)?;
            sup.wait_ready().map_err(io::Error::other)?;
            quarantined = sup.quarantine_flags();
            supervisor = Some(Arc::new(sup));
        } else {
            quarantined = Arc::new(
                (0..config.cells.len())
                    .map(|_| AtomicBool::new(false))
                    .collect::<Vec<_>>(),
            );
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cells = config
            .cells
            .iter()
            .map(|spec| {
                let resolved = spec.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("cell {spec:?} resolves to nothing"),
                    )
                })?;
                Ok(Cell {
                    addr: resolved,
                    display: spec.clone(),
                    pool: Mutex::new(Vec::new()),
                    breaker: CircuitBreaker::new(config.breaker),
                    forwarded: AtomicU64::new(0),
                    failures: AtomicU64::new(0),
                    warmups: AtomicU64::new(0),
                })
            })
            .collect::<io::Result<Vec<Cell>>>()?;
        let journal = Arc::new(FailoverJournal::new(
            cells.len(),
            config.failover.journal_depth,
        ));
        let fleet = Arc::new(Fleet {
            cells,
            io_timeout: Duration::from_millis(config.io_timeout_ms.max(1)),
            exemplars: Mutex::new(VecDeque::new()),
            warm_exemplars: config.warm_exemplars,
            failover: config.failover,
            quarantined,
            journal,
            response_cache: ResponseCache::new(config.response_cache),
            metrics: Arc::clone(&metrics),
            lock_recoveries: AtomicU64::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));

        let (forward_tx, forward_rx) = mpsc::channel::<ForwardJob>();
        let forward_rx = Arc::new(Mutex::new(forward_rx));
        let mut forwarders = Vec::new();
        for i in 0..config.forwarders.max(1) {
            let fleet = Arc::clone(&fleet);
            let forward_rx = Arc::clone(&forward_rx);
            forwarders.push(
                std::thread::Builder::new()
                    .name(format!("mqo-forward-{i}"))
                    .spawn(move || loop {
                        // Pull one job under the lock, forward outside it.
                        let job = {
                            let rx = fleet_rx(&forward_rx, &fleet);
                            match rx.recv() {
                                Ok(job) => job,
                                Err(_) => return,
                            }
                        };
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                fleet.forward(job.hash, &job.request, job.admitted)
                            }))
                            .unwrap_or_else(|_| {
                                Response::reject(&Reject::InternalError {
                                    detail: "forwarder panicked".to_string(),
                                })
                            });
                        job.completer.complete(outcome);
                    })?,
            );
        }

        let handler = Arc::new(RouterHandler {
            fleet: Arc::clone(&fleet),
            forward_tx,
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            supervisor: supervisor.clone(),
            epsilon: config.epsilon,
        });
        let event_loop = EventLoop::spawn(
            listener,
            LoopConfig {
                shards: config.accept_shards,
                http: config.http,
                request_deadline_ms: config.request_deadline_ms,
                idle_timeout_ms: config.idle_timeout_ms,
                max_connections: config.max_connections,
                max_pipeline: config.max_pipeline,
            },
            handler,
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        )?;

        Ok(MqoRouter {
            addr,
            fleet,
            metrics,
            shutdown,
            event_loop: Mutex::new(Some(event_loop)),
            forwarders: Mutex::new(forwarders),
            supervisor,
            supervisor_report: Mutex::new(Vec::new()),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's front-end metrics handle.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Per-cell health (breaker state, traffic, warm-ups, pool size,
    /// quarantine, journal occupancy).
    #[must_use]
    pub fn cells(&self) -> Vec<CellSnapshot> {
        self.fleet.cell_snapshots()
    }

    /// The fleet supervisor, when this router spawned its own cells.
    #[must_use]
    pub fn supervisor(&self) -> Option<&Arc<Supervisor>> {
        self.supervisor.as_ref()
    }

    /// How the supervised cells went down; empty before [`MqoRouter::wait`]
    /// finishes (or when unsupervised).
    #[must_use]
    pub fn supervisor_report(&self) -> Vec<String> {
        lock_recover(&self.supervisor_report, &self.fleet.lock_recoveries).clone()
    }

    /// True once a shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, drains the event loop (every
    /// in-flight forward is answered), joins the forwarder pool, then
    /// drains the supervised cells.
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(event_loop) = lock_recover(&self.event_loop, &self.fleet.lock_recoveries).take()
        {
            event_loop.wake();
            event_loop.join();
        }
        // The event loop dropped the handler — and with it the forward
        // sender — so the forwarders drain whatever is queued and exit.
        let handles: Vec<JoinHandle<()>> =
            lock_recover(&self.forwarders, &self.fleet.lock_recoveries)
                .drain(..)
                .collect();
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(supervisor) = &self.supervisor {
            let report = supervisor.shutdown();
            *lock_recover(&self.supervisor_report, &self.fleet.lock_recoveries) = report;
        }
    }

    /// Requests a graceful shutdown and waits for the drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wait();
    }
}

/// Locks the shared forwarder receiver, recovering from poison via the
/// fleet's recovery counter.
fn fleet_rx<'a>(
    rx: &'a Arc<Mutex<mpsc::Receiver<ForwardJob>>>,
    fleet: &Fleet,
) -> std::sync::MutexGuard<'a, mpsc::Receiver<ForwardJob>> {
    lock_recover(rx, &fleet.lock_recoveries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::http::{read_response, render_request, roundtrip};
    use crate::server::{Server, ServerConfig};
    use mqo_chimera::graph::ChimeraGraph;
    use std::io::Write;

    fn cell_server() -> Server {
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        Server::start(ServerConfig::new(engine)).expect("bind cell")
    }

    fn router_over(cells: &[&Server]) -> MqoRouter {
        let specs = cells
            .iter()
            .map(|cell| cell.local_addr().to_string())
            .collect();
        MqoRouter::start(MqoRouterConfig::new(specs)).expect("bind router")
    }

    /// Two structurally distinct tiny instances (different plan counts), so
    /// they can shard to different cells.
    const TINY_A: &[u8] =
        br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7}"#;
    const TINY_B: &[u8] =
        br#"{"problem": {"queries": [[2,4,6],[3,1]], "savings": [[1,3,5.0]]}, "seed": 7}"#;

    #[test]
    fn sharded_responses_are_bit_identical_to_a_single_cell() {
        let cell_a = cell_server();
        let cell_b = cell_server();
        let router = router_over(&[&cell_a, &cell_b]);
        let solo = cell_server();
        for body in [TINY_A, TINY_B] {
            let (via_router, direct) = (
                roundtrip(router.local_addr(), "POST", "/solve", body).unwrap(),
                roundtrip(solo.local_addr(), "POST", "/solve", body).unwrap(),
            );
            assert_eq!(
                via_router.0,
                200,
                "{}",
                String::from_utf8_lossy(&via_router.1)
            );
            // Identical (problem, seed) answers bit-identically regardless
            // of which cell solved it (timing fields differ; compare the
            // solution surface).
            let r: serde_json::Value = serde_json::from_slice(&via_router.1).unwrap();
            let d: serde_json::Value = serde_json::from_slice(&direct.1).unwrap();
            for field in ["selection", "cost", "backend", "reads", "qubits_used"] {
                assert_eq!(r[field], d[field], "{field}");
            }
        }
        let total: u64 = router.cells().iter().map(|c| c.forwarded).sum();
        assert_eq!(total, 2);
        router.shutdown();
        cell_a.shutdown();
        cell_b.shutdown();
        solo.shutdown();
    }

    #[test]
    fn same_structure_always_lands_on_the_same_cell() {
        let cell_a = cell_server();
        let cell_b = cell_server();
        let router = router_over(&[&cell_a, &cell_b]);
        // Same structure, different weights/seeds: one cell takes them all.
        let bodies: Vec<Vec<u8>> = (0..4)
            .map(|seed| {
                format!(
                    r#"{{"problem": {{"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}}, "seed": {seed}}}"#
                )
                .into_bytes()
            })
            .collect();
        for body in &bodies {
            let (status, body) = roundtrip(router.local_addr(), "POST", "/solve", body).unwrap();
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        }
        let cells = router.cells();
        let loads: Vec<u64> = cells.iter().map(|c| c.forwarded).collect();
        assert!(
            loads.contains(&4) && loads.contains(&0),
            "one cell takes the whole structure shard, saw {loads:?}"
        );
        // The owning cell saw 1 miss + 3 hits; the idle cell saw nothing.
        let owner = if loads[0] == 4 { &cell_a } else { &cell_b };
        assert_eq!(owner.metrics().snapshot().cache_hits, 3);
        router.shutdown();
        cell_a.shutdown();
        cell_b.shutdown();
    }

    #[test]
    fn dead_cells_fall_through_and_recovery_warms_the_cache() {
        let cell_a = cell_server();
        let cell_b = cell_server();
        let mut config = MqoRouterConfig::new(vec![
            cell_a.local_addr().to_string(),
            cell_b.local_addr().to_string(),
        ]);
        config.breaker.failure_threshold = 1;
        config.breaker.open_ms = 50;
        config.io_timeout_ms = 500;
        // This test exercises the *uncached* fall-through path: a repeat of
        // TINY_A must reach a cell, not the response cache.
        config.response_cache = 0;
        let router = MqoRouter::start(config).expect("bind router");

        // Find which cell owns TINY_A's structure, then kill it.
        let (status, _) = roundtrip(router.local_addr(), "POST", "/solve", TINY_A).unwrap();
        assert_eq!(status, 200);
        let owner_idx = router
            .cells()
            .iter()
            .position(|c| c.forwarded == 1)
            .expect("one cell answered");
        let (owner, survivor) = if owner_idx == 0 {
            (cell_a, &cell_b)
        } else {
            (cell_b, &cell_a)
        };
        owner.shutdown();

        // The shard's primary is gone: requests fall through to the
        // survivor and still answer 200.
        let (status, body) = roundtrip(router.local_addr(), "POST", "/solve", TINY_A).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let cells = router.cells();
        assert!(
            cells[owner_idx].failures >= 1,
            "dead cell recorded failures"
        );
        assert_eq!(
            survivor.metrics().snapshot().requests_total,
            1,
            "survivor answered the fallen-through request"
        );
        // The fall-through was a transparent failover and is counted.
        assert!(
            router.metrics().snapshot().failovers >= 1,
            "failover counted"
        );
        router.shutdown();
        survivor.shutdown();
    }

    #[test]
    fn router_metrics_report_per_cell_breaker_state() {
        let cell = cell_server();
        let router = router_over(&[&cell]);
        let (status, body) = roundtrip(router.local_addr(), "GET", "/metrics", b"").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["router"]["cells"][0]["breaker"]["state"], "closed");
        assert_eq!(v["router"]["cells"][0]["quarantined"], false);
        assert!(v["service"]["requests_total"].is_u64());
        assert!(
            v["supervisor"].is_null(),
            "unsupervised router reports no supervisor panel"
        );
        let (status, body) = roundtrip(router.local_addr(), "GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok","cells":1}"#);
        router.shutdown();
        cell.shutdown();
    }

    #[test]
    fn malformed_bodies_are_rejected_at_the_router_without_forwarding() {
        let cell = cell_server();
        let router = router_over(&[&cell]);
        let (status, body) = roundtrip(router.local_addr(), "POST", "/solve", b"{nope").unwrap();
        assert_eq!(status, 400);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["reason"], "invalid_request");
        assert_eq!(cell.metrics().snapshot().requests_total, 0);
        assert_eq!(router.cells()[0].forwarded, 0);
        router.shutdown();
        cell.shutdown();
    }

    #[test]
    fn repeated_requests_hit_the_response_cache_with_identical_bytes() {
        let cell = cell_server();
        let router = router_over(&[&cell]);
        let (status, first) = roundtrip(router.local_addr(), "POST", "/solve", TINY_A).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&first));
        let (status, second) = roundtrip(router.local_addr(), "POST", "/solve", TINY_A).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            first, second,
            "a cache hit returns the exact bytes of the first answer"
        );
        let snapshot = router.metrics().snapshot();
        assert_eq!(snapshot.router_cache_hits, 1);
        assert_eq!(snapshot.router_cache_misses, 1);
        assert_eq!(
            cell.metrics().snapshot().requests_total,
            1,
            "the repeat never reached the cell"
        );
        // A different deadline must not change the cache key: the answer
        // depends on (problem, seed, reads, gauges, backend) only.
        let with_deadline =
            br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7, "deadline_ms": 9000}"#;
        let (status, third) =
            roundtrip(router.local_addr(), "POST", "/solve", with_deadline).unwrap();
        assert_eq!(status, 200);
        assert_eq!(third, first, "deadline-only variation is the same answer");
        assert_eq!(router.metrics().snapshot().router_cache_hits, 2);
        // A different seed is a different answer and must miss.
        let other_seed =
            br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 8}"#;
        let (status, _) = roundtrip(router.local_addr(), "POST", "/solve", other_seed).unwrap();
        assert_eq!(status, 200);
        assert_eq!(router.metrics().snapshot().router_cache_misses, 2);
        router.shutdown();
        cell.shutdown();
    }

    #[test]
    fn cached_responses_are_bit_identical_to_the_uncached_path() {
        // Same request through a caching router and a cache-disabled
        // router over equally configured cells: the solution surface is
        // identical — the cache changes *where* bytes come from, never
        // *what* they say.
        let cell_cached = cell_server();
        let cell_plain = cell_server();
        let cached_router = router_over(&[&cell_cached]);
        let mut plain_config = MqoRouterConfig::new(vec![cell_plain.local_addr().to_string()]);
        plain_config.response_cache = 0;
        let plain_router = MqoRouter::start(plain_config).expect("bind router");

        // Prime the cache, then read through it.
        let (_, _) = roundtrip(cached_router.local_addr(), "POST", "/solve", TINY_B).unwrap();
        let (status_c, via_cache) =
            roundtrip(cached_router.local_addr(), "POST", "/solve", TINY_B).unwrap();
        let (status_p, via_plain) =
            roundtrip(plain_router.local_addr(), "POST", "/solve", TINY_B).unwrap();
        assert_eq!((status_c, status_p), (200, 200));
        assert_eq!(cached_router.metrics().snapshot().router_cache_hits, 1);
        let c: serde_json::Value = serde_json::from_slice(&via_cache).unwrap();
        let p: serde_json::Value = serde_json::from_slice(&via_plain).unwrap();
        for field in ["selection", "cost", "backend", "reads", "qubits_used"] {
            assert_eq!(c[field], p[field], "{field}");
        }
        cached_router.shutdown();
        plain_router.shutdown();
        cell_cached.shutdown();
        cell_plain.shutdown();
    }

    #[test]
    fn retry_after_reflects_the_breaker_cooling_interval() {
        // One unreachable cell with a 30 s breaker: the first request
        // opens the breaker, the second is rejected while it is open and
        // must advertise the breaker's remaining cooling time, not "1".
        let dead = {
            // Bind-then-drop: a port that connects to nothing.
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let mut config = MqoRouterConfig::new(vec![dead.to_string()]);
        config.breaker.failure_threshold = 1;
        config.breaker.open_ms = 30_000;
        config.io_timeout_ms = 200;
        config.failover.rounds = 1;
        let router = MqoRouter::start(config).expect("bind router");

        let (status, _) = roundtrip(router.local_addr(), "POST", "/solve", TINY_A).unwrap();
        assert_eq!(status, 503, "dead cell yields backend_unavailable");
        // Second request: the breaker is open, nothing is attempted.
        let mut stream = std::net::TcpStream::connect(router.local_addr()).unwrap();
        stream
            .write_all(&render_request(
                "POST",
                "/solve",
                &router.local_addr().to_string(),
                TINY_A,
                true,
            ))
            .unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let parts = read_response(&mut reader).unwrap();
        assert_eq!(parts.status, 503);
        let retry_after = parts.retry_after.expect("503 carries Retry-After");
        assert!(
            (2..=30).contains(&retry_after),
            "Retry-After tracks the ~30 s breaker interval, got {retry_after}"
        );
        router.shutdown();
    }

    #[test]
    fn next_deadline_subtracts_elapsed_and_strictly_decreases() {
        assert_eq!(next_deadline(1_000, 0, None), Some(1_000));
        assert_eq!(next_deadline(1_000, 400, None), Some(600));
        assert_eq!(next_deadline(1_000, 1_000, None), None, "budget spent");
        assert_eq!(next_deadline(1_000, 1_500, None), None, "budget overdrawn");
        // Same-millisecond replays still strictly decrease.
        assert_eq!(next_deadline(1_000, 400, Some(600)), Some(599));
        assert_eq!(next_deadline(1_000, 400, Some(1)), None, "floor reached");
        // The previous cap never lets the deadline grow back.
        assert_eq!(next_deadline(1_000, 0, Some(500)), Some(499));
    }

    #[test]
    fn journal_bounds_outstanding_requests_per_shard() {
        let journal = Arc::new(FailoverJournal::new(2, 2));
        let a = journal.admit(0, 11).expect("first admitted");
        let _b = journal.admit(0, 12).expect("second admitted");
        assert!(journal.admit(0, 13).is_none(), "shard 0 at depth");
        assert!(journal.admit(1, 14).is_some(), "shard 1 unaffected");
        assert_eq!(journal.outstanding(0), 2);
        drop(a);
        assert_eq!(journal.outstanding(0), 1, "guard drop releases the slot");
        assert!(journal.admit(0, 15).is_some(), "slot reusable");
        // Depth 0 disables the bound.
        let unbounded = Arc::new(FailoverJournal::new(1, 0));
        for i in 0..100 {
            assert!(unbounded.admit(0, i).is_some());
        }
        assert_eq!(
            unbounded.outstanding(0),
            0,
            "disabled journal stores nothing"
        );
    }

    #[test]
    fn response_cache_is_a_bounded_lru() {
        let cache = ResponseCache::new(2);
        cache.insert(b"a", "1");
        cache.insert(b"b", "2");
        assert_eq!(cache.get(b"a").as_deref(), Some("1"));
        cache.insert(b"c", "3");
        assert_eq!(cache.get(b"b"), None, "LRU victim evicted");
        assert_eq!(cache.get(b"a").as_deref(), Some("1"));
        assert_eq!(cache.get(b"c").as_deref(), Some("3"));
        assert_eq!(cache.len(), 2);
        let disabled = ResponseCache::new(0);
        disabled.insert(b"a", "1");
        assert_eq!(disabled.get(b"a"), None);
        assert_eq!(disabled.len(), 0);
    }
}
