//! The structure-sharded router front (`mqo_router`, DESIGN.md §13).
//!
//! A thin front process that consistently shards `POST /solve` requests
//! across N `mqo_serve` *cells* by the instance's QUBO structure
//! (`Qubo::structure_hash`, which is weight-independent): structurally
//! identical instances always land on the same cell, so each cell's
//! embedding cache sees the full hit-rate benefit of its shard instead of
//! every cell re-deriving every embedding.
//!
//! The router reuses the nonblocking event-loop front-end
//! ([`crate::event_loop`]) for its own client side; forwarding happens on a
//! small pool of forwarder threads over *pooled keep-alive upstream
//! connections* ([`crate::http::KeepAliveClient`]), so neither accepting nor
//! forwarding blocks the poll loop.
//!
//! Per-cell resilience:
//!
//! * every cell has its own [`CircuitBreaker`]; an unreachable cell is
//!   skipped after `failure_threshold` consecutive failures and its traffic
//!   falls through to the next healthy cell (consistent order: the probe
//!   sequence starts at `hash % cells` and walks forward);
//! * when a cell recovers (its breaker closes after being open), the router
//!   replays a bounded set of recent *exemplar* requests whose primary
//!   shard is that cell — warming the respawned cell's embedding cache
//!   before live traffic returns to it;
//! * any HTTP answer from a cell — including typed rejections — counts as
//!   cell health; only transport errors trip the breaker.

use crate::api::{Reject, SolveRequest};
use crate::breaker::{BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker};
use crate::event_loop::{Action, Completer, EventLoop, Handler, LoopConfig, Response};
use crate::http::{HttpLimits, KeepAliveClient, Request};
use crate::metrics::{lock_recover, Metrics};
use mqo_core::logical::LogicalMapping;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct MqoRouterConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Upstream `mqo_serve` cell addresses (at least one).
    pub cells: Vec<String>,
    /// Epsilon used to build the logical QUBO for the shard key; must match
    /// the cells' engine epsilon for the key to mirror their cache key.
    pub epsilon: f64,
    /// Forwarder threads (each owns pooled upstream connections).
    pub forwarders: usize,
    /// Upstream connect/read/write timeout, milliseconds.
    pub io_timeout_ms: u64,
    /// Per-cell circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Recent requests retained per structure hash for cache warm-up on
    /// cell recovery (0 disables warm-up).
    pub warm_exemplars: usize,
    /// Client-side byte/count caps.
    pub http: HttpLimits,
    /// Client-side whole-request read deadline, milliseconds.
    pub request_deadline_ms: u64,
    /// Client-side idle / write-stall timeout, milliseconds.
    pub idle_timeout_ms: u64,
    /// Client-side connection cap.
    pub max_connections: usize,
    /// Event-loop accept shards.
    pub accept_shards: usize,
    /// Pipelined requests per client connection cap.
    pub max_pipeline: usize,
}

impl MqoRouterConfig {
    /// Loopback defaults over the given cells.
    #[must_use]
    pub fn new(cells: Vec<String>) -> Self {
        MqoRouterConfig {
            addr: "127.0.0.1:0".to_string(),
            cells,
            epsilon: 0.25,
            forwarders: 4,
            io_timeout_ms: 10_000,
            breaker: BreakerConfig::default(),
            warm_exemplars: 32,
            http: HttpLimits::default(),
            request_deadline_ms: 10_000,
            idle_timeout_ms: 10_000,
            max_connections: 256,
            accept_shards: 2,
            max_pipeline: 32,
        }
    }
}

/// The shard key of one instance: the structure hash of its logical QUBO.
/// Weight-independent, so instances differing only in costs/savings values
/// still map to the same cell (and hit its cached embedding).
#[must_use]
pub fn structure_key(problem: &mqo_core::problem::MqoProblem, epsilon: f64) -> u64 {
    LogicalMapping::new(problem, epsilon)
        .qubo()
        .structure_hash()
}

/// One upstream cell: address, connection pool, breaker, counters.
struct Cell {
    addr: SocketAddr,
    display: String,
    pool: Mutex<Vec<KeepAliveClient>>,
    breaker: CircuitBreaker,
    forwarded: AtomicU64,
    failures: AtomicU64,
    warmups: AtomicU64,
}

/// Serialisable per-cell health reported under the router's `/metrics`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CellSnapshot {
    /// The cell's address.
    pub addr: String,
    /// Breaker state and transition counters.
    pub breaker: BreakerSnapshot,
    /// Requests this cell answered.
    pub forwarded: u64,
    /// Transport failures talking to this cell.
    pub failures: u64,
    /// Warm-up requests replayed into this cell after recovery.
    pub warmups: u64,
    /// Idle pooled keep-alive connections to this cell.
    pub pooled: usize,
}

/// Shared forwarding state: the cells and the warm-up exemplar store.
struct Fleet {
    cells: Vec<Cell>,
    io_timeout: Duration,
    /// Most-recent request body per structure hash, bounded FIFO; replayed
    /// into a cell when its breaker closes after being open.
    exemplars: Mutex<VecDeque<(u64, Vec<u8>)>>,
    warm_exemplars: usize,
    lock_recoveries: AtomicU64,
}

impl Fleet {
    /// Primary cell of a shard key, before breaker fall-through.
    fn primary(&self, hash: u64) -> usize {
        (hash % self.cells.len() as u64) as usize
    }

    /// Remembers `body` as the exemplar for `hash` (replacing any previous
    /// one), evicting the oldest entry beyond the cap.
    fn remember(&self, hash: u64, body: &[u8]) {
        if self.warm_exemplars == 0 {
            return;
        }
        let mut exemplars = lock_recover(&self.exemplars, &self.lock_recoveries);
        if let Some(pos) = exemplars.iter().position(|(h, _)| *h == hash) {
            exemplars.remove(pos);
        }
        exemplars.push_back((hash, body.to_vec()));
        while exemplars.len() > self.warm_exemplars {
            exemplars.pop_front();
        }
    }

    /// Forwards one `/solve` body to the shard's cell, falling through to
    /// the next healthy cell on transport failure. Any HTTP answer is
    /// passed through verbatim.
    fn forward(&self, hash: u64, body: &[u8]) -> Response {
        let n = self.cells.len();
        let mut detail = String::new();
        for step in 0..n {
            let idx = (self.primary(hash) + step) % n;
            let cell = &self.cells[idx];
            if !cell.breaker.admit() {
                if !detail.is_empty() {
                    detail.push_str("; ");
                }
                detail.push_str(&format!("{}: breaker open", cell.display));
                continue;
            }
            let was_unhealthy = cell.breaker.state() != BreakerState::Closed
                || cell.breaker.snapshot().consecutive_failures > 0;
            match self.try_cell(cell, body) {
                Ok((status, resp_body)) => {
                    cell.breaker.record_success();
                    Metrics::inc(&cell.forwarded);
                    self.remember(hash, body);
                    if was_unhealthy {
                        self.warm_cell(idx);
                    }
                    let body = String::from_utf8(resp_body)
                        .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
                    return Response::json(status, body);
                }
                Err(e) => {
                    cell.breaker.record_failure();
                    Metrics::inc(&cell.failures);
                    if !detail.is_empty() {
                        detail.push_str("; ");
                    }
                    detail.push_str(&format!("{}: {e}", cell.display));
                }
            }
        }
        Response::reject(&Reject::BackendUnavailable { detail }).with_header("retry-after", "1")
    }

    /// One attempt against one cell over a pooled keep-alive connection;
    /// the client itself retries once on a stale pooled connection.
    fn try_cell(&self, cell: &Cell, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let mut client = lock_recover(&cell.pool, &self.lock_recoveries)
            .pop()
            .unwrap_or_else(|| KeepAliveClient::with_timeout(cell.addr, Some(self.io_timeout)));
        let result = client.request("POST", "/solve", body);
        if result.is_ok() {
            lock_recover(&cell.pool, &self.lock_recoveries).push(client);
        }
        result
    }

    /// Replays the exemplars whose primary shard is `idx` into that cell,
    /// warming its embedding cache after a respawn. Best-effort: replay
    /// failures are ignored (live traffic will re-trip the breaker).
    fn warm_cell(&self, idx: usize) {
        if self.warm_exemplars == 0 {
            return;
        }
        let mine: Vec<Vec<u8>> = lock_recover(&self.exemplars, &self.lock_recoveries)
            .iter()
            .filter(|(hash, _)| self.primary(*hash) == idx)
            .map(|(_, body)| body.clone())
            .collect();
        if mine.is_empty() {
            return;
        }
        let cell = &self.cells[idx];
        let mut client = KeepAliveClient::with_timeout(cell.addr, Some(self.io_timeout));
        for body in mine {
            if client.request("POST", "/solve", &body).is_err() {
                return;
            }
            Metrics::inc(&cell.warmups);
        }
    }

    fn cell_snapshots(&self) -> Vec<CellSnapshot> {
        self.cells
            .iter()
            .map(|cell| CellSnapshot {
                addr: cell.display.clone(),
                breaker: cell.breaker.snapshot(),
                forwarded: cell.forwarded.load(Ordering::Relaxed),
                failures: cell.failures.load(Ordering::Relaxed),
                warmups: cell.warmups.load(Ordering::Relaxed),
                pooled: lock_recover(&cell.pool, &self.lock_recoveries).len(),
            })
            .collect()
    }
}

/// A solve forward in flight from the event loop to a forwarder thread.
struct ForwardJob {
    hash: u64,
    body: Vec<u8>,
    completer: Completer,
}

/// Routes client requests: introspection answers inline, `/solve` is
/// dispatched to the forwarder pool.
struct RouterHandler {
    fleet: Arc<Fleet>,
    forward_tx: mpsc::Sender<ForwardJob>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    epsilon: f64,
}

impl Handler for RouterHandler {
    fn handle(&self, request: Request, completer: Completer) -> Action {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Action::Respond(Response::json(
                200,
                format!(r#"{{"status":"ok","cells":{}}}"#, self.fleet.cells.len()),
            )),
            ("GET", "/metrics") => {
                let payload = serde_json::json!({
                    "service": self.metrics.snapshot(),
                    "router": serde_json::json!({ "cells": self.fleet.cell_snapshots() }),
                });
                Action::Respond(Response::json(200, payload.to_string()))
            }
            ("POST", "/solve") => {
                Metrics::inc(&self.metrics.requests_total);
                let solve_request: SolveRequest = match serde_json::from_slice(&request.body) {
                    Ok(r) => r,
                    Err(e) => {
                        Metrics::inc(&self.metrics.rejected_invalid);
                        return Action::Respond(Response::reject(&Reject::InvalidRequest {
                            detail: e.to_string(),
                        }));
                    }
                };
                let hash = structure_key(&solve_request.problem, self.epsilon);
                match self.forward_tx.send(ForwardJob {
                    hash,
                    body: request.body,
                    completer,
                }) {
                    Ok(()) => Action::Pending,
                    Err(mpsc::SendError(job)) => {
                        // Forwarder pool gone: only happens mid-teardown.
                        job.completer
                            .complete(Response::reject(&Reject::ShuttingDown));
                        Action::Pending
                    }
                }
            }
            ("POST", "/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                Action::Respond(Response::json(200, r#"{"status":"draining"}"#).closing())
            }
            ("GET", "/solve") | ("POST", "/healthz") | ("POST", "/metrics") => {
                Action::Respond(Response::json(405, r#"{"error":"method not allowed"}"#))
            }
            _ => Action::Respond(Response::json(404, r#"{"error":"not found"}"#)),
        }
    }
}

/// A running structure-sharded router.
pub struct MqoRouter {
    addr: SocketAddr,
    fleet: Arc<Fleet>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    event_loop: Mutex<Option<EventLoop>>,
    forwarders: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for MqoRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MqoRouter")
            .field("addr", &self.addr)
            .field("cells", &self.fleet.cells.len())
            .finish()
    }
}

impl MqoRouter {
    /// Binds the listener, resolves the cells, spawns the event-loop shards
    /// and the forwarder pool.
    pub fn start(config: MqoRouterConfig) -> io::Result<MqoRouter> {
        if config.cells.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one cell",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cells = config
            .cells
            .iter()
            .map(|spec| {
                let resolved = spec.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("cell {spec:?} resolves to nothing"),
                    )
                })?;
                Ok(Cell {
                    addr: resolved,
                    display: spec.clone(),
                    pool: Mutex::new(Vec::new()),
                    breaker: CircuitBreaker::new(config.breaker),
                    forwarded: AtomicU64::new(0),
                    failures: AtomicU64::new(0),
                    warmups: AtomicU64::new(0),
                })
            })
            .collect::<io::Result<Vec<Cell>>>()?;
        let fleet = Arc::new(Fleet {
            cells,
            io_timeout: Duration::from_millis(config.io_timeout_ms.max(1)),
            exemplars: Mutex::new(VecDeque::new()),
            warm_exemplars: config.warm_exemplars,
            lock_recoveries: AtomicU64::new(0),
        });
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));

        let (forward_tx, forward_rx) = mpsc::channel::<ForwardJob>();
        let forward_rx = Arc::new(Mutex::new(forward_rx));
        let mut forwarders = Vec::new();
        for i in 0..config.forwarders.max(1) {
            let fleet = Arc::clone(&fleet);
            let forward_rx = Arc::clone(&forward_rx);
            forwarders.push(
                std::thread::Builder::new()
                    .name(format!("mqo-forward-{i}"))
                    .spawn(move || loop {
                        // Pull one job under the lock, forward outside it.
                        let job = {
                            let rx = fleet_rx(&forward_rx, &fleet);
                            match rx.recv() {
                                Ok(job) => job,
                                Err(_) => return,
                            }
                        };
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                fleet.forward(job.hash, &job.body)
                            }))
                            .unwrap_or_else(|_| {
                                Response::reject(&Reject::InternalError {
                                    detail: "forwarder panicked".to_string(),
                                })
                            });
                        job.completer.complete(outcome);
                    })?,
            );
        }

        let handler = Arc::new(RouterHandler {
            fleet: Arc::clone(&fleet),
            forward_tx,
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            epsilon: config.epsilon,
        });
        let event_loop = EventLoop::spawn(
            listener,
            LoopConfig {
                shards: config.accept_shards,
                http: config.http,
                request_deadline_ms: config.request_deadline_ms,
                idle_timeout_ms: config.idle_timeout_ms,
                max_connections: config.max_connections,
                max_pipeline: config.max_pipeline,
            },
            handler,
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        )?;

        Ok(MqoRouter {
            addr,
            fleet,
            metrics,
            shutdown,
            event_loop: Mutex::new(Some(event_loop)),
            forwarders: Mutex::new(forwarders),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's front-end metrics handle.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Per-cell health (breaker state, traffic, warm-ups, pool size).
    #[must_use]
    pub fn cells(&self) -> Vec<CellSnapshot> {
        self.fleet.cell_snapshots()
    }

    /// True once a shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, drains the event loop (every
    /// in-flight forward is answered), then joins the forwarder pool.
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(event_loop) = lock_recover(&self.event_loop, &self.fleet.lock_recoveries).take()
        {
            event_loop.wake();
            event_loop.join();
        }
        // The event loop dropped the handler — and with it the forward
        // sender — so the forwarders drain whatever is queued and exit.
        let handles: Vec<JoinHandle<()>> =
            lock_recover(&self.forwarders, &self.fleet.lock_recoveries)
                .drain(..)
                .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Requests a graceful shutdown and waits for the drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wait();
    }
}

/// Locks the shared forwarder receiver, recovering from poison via the
/// fleet's recovery counter.
fn fleet_rx<'a>(
    rx: &'a Arc<Mutex<mpsc::Receiver<ForwardJob>>>,
    fleet: &Fleet,
) -> std::sync::MutexGuard<'a, mpsc::Receiver<ForwardJob>> {
    lock_recover(rx, &fleet.lock_recoveries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::http::roundtrip;
    use crate::server::{Server, ServerConfig};
    use mqo_chimera::graph::ChimeraGraph;

    fn cell_server() -> Server {
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 20;
        engine.device.num_gauges = 2;
        Server::start(ServerConfig::new(engine)).expect("bind cell")
    }

    fn router_over(cells: &[&Server]) -> MqoRouter {
        let specs = cells
            .iter()
            .map(|cell| cell.local_addr().to_string())
            .collect();
        MqoRouter::start(MqoRouterConfig::new(specs)).expect("bind router")
    }

    /// Two structurally distinct tiny instances (different plan counts), so
    /// they can shard to different cells.
    const TINY_A: &[u8] =
        br#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}, "seed": 7}"#;
    const TINY_B: &[u8] =
        br#"{"problem": {"queries": [[2,4,6],[3,1]], "savings": [[1,3,5.0]]}, "seed": 7}"#;

    #[test]
    fn sharded_responses_are_bit_identical_to_a_single_cell() {
        let cell_a = cell_server();
        let cell_b = cell_server();
        let router = router_over(&[&cell_a, &cell_b]);
        let solo = cell_server();
        for body in [TINY_A, TINY_B] {
            let (via_router, direct) = (
                roundtrip(router.local_addr(), "POST", "/solve", body).unwrap(),
                roundtrip(solo.local_addr(), "POST", "/solve", body).unwrap(),
            );
            assert_eq!(
                via_router.0,
                200,
                "{}",
                String::from_utf8_lossy(&via_router.1)
            );
            // Identical (problem, seed) answers bit-identically regardless
            // of which cell solved it (timing fields differ; compare the
            // solution surface).
            let r: serde_json::Value = serde_json::from_slice(&via_router.1).unwrap();
            let d: serde_json::Value = serde_json::from_slice(&direct.1).unwrap();
            for field in ["selection", "cost", "backend", "reads", "qubits_used"] {
                assert_eq!(r[field], d[field], "{field}");
            }
        }
        let total: u64 = router.cells().iter().map(|c| c.forwarded).sum();
        assert_eq!(total, 2);
        router.shutdown();
        cell_a.shutdown();
        cell_b.shutdown();
        solo.shutdown();
    }

    #[test]
    fn same_structure_always_lands_on_the_same_cell() {
        let cell_a = cell_server();
        let cell_b = cell_server();
        let router = router_over(&[&cell_a, &cell_b]);
        // Same structure, different weights/seeds: one cell takes them all.
        let bodies: Vec<Vec<u8>> = (0..4)
            .map(|seed| {
                format!(
                    r#"{{"problem": {{"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}}, "seed": {seed}}}"#
                )
                .into_bytes()
            })
            .collect();
        for body in &bodies {
            let (status, body) = roundtrip(router.local_addr(), "POST", "/solve", body).unwrap();
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        }
        let cells = router.cells();
        let loads: Vec<u64> = cells.iter().map(|c| c.forwarded).collect();
        assert!(
            loads.contains(&4) && loads.contains(&0),
            "one cell takes the whole structure shard, saw {loads:?}"
        );
        // The owning cell saw 1 miss + 3 hits; the idle cell saw nothing.
        let owner = if loads[0] == 4 { &cell_a } else { &cell_b };
        assert_eq!(owner.metrics().snapshot().cache_hits, 3);
        router.shutdown();
        cell_a.shutdown();
        cell_b.shutdown();
    }

    #[test]
    fn dead_cells_fall_through_and_recovery_warms_the_cache() {
        let cell_a = cell_server();
        let cell_b = cell_server();
        let mut config = MqoRouterConfig::new(vec![
            cell_a.local_addr().to_string(),
            cell_b.local_addr().to_string(),
        ]);
        config.breaker.failure_threshold = 1;
        config.breaker.open_ms = 50;
        config.io_timeout_ms = 500;
        let router = MqoRouter::start(config).expect("bind router");

        // Find which cell owns TINY_A's structure, then kill it.
        let (status, _) = roundtrip(router.local_addr(), "POST", "/solve", TINY_A).unwrap();
        assert_eq!(status, 200);
        let owner_idx = router
            .cells()
            .iter()
            .position(|c| c.forwarded == 1)
            .expect("one cell answered");
        let (owner, survivor) = if owner_idx == 0 {
            (cell_a, &cell_b)
        } else {
            (cell_b, &cell_a)
        };
        owner.shutdown();

        // The shard's primary is gone: requests fall through to the
        // survivor and still answer 200.
        let (status, body) = roundtrip(router.local_addr(), "POST", "/solve", TINY_A).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let cells = router.cells();
        assert!(
            cells[owner_idx].failures >= 1,
            "dead cell recorded failures"
        );
        assert_eq!(
            survivor.metrics().snapshot().requests_total,
            1,
            "survivor answered the fallen-through request"
        );
        router.shutdown();
        survivor.shutdown();
    }

    #[test]
    fn router_metrics_report_per_cell_breaker_state() {
        let cell = cell_server();
        let router = router_over(&[&cell]);
        let (status, body) = roundtrip(router.local_addr(), "GET", "/metrics", b"").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["router"]["cells"][0]["breaker"]["state"], "closed");
        assert!(v["service"]["requests_total"].is_u64());
        let (status, body) = roundtrip(router.local_addr(), "GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok","cells":1}"#);
        router.shutdown();
        cell.shutdown();
    }

    #[test]
    fn malformed_bodies_are_rejected_at_the_router_without_forwarding() {
        let cell = cell_server();
        let router = router_over(&[&cell]);
        let (status, body) = roundtrip(router.local_addr(), "POST", "/solve", b"{nope").unwrap();
        assert_eq!(status, 400);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["reason"], "invalid_request");
        assert_eq!(cell.metrics().snapshot().requests_total, 0);
        assert_eq!(router.cells()[0].forwarded, 0);
        router.shutdown();
        cell.shutdown();
    }
}
