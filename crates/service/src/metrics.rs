//! Service counters and latency histograms, exported as JSON on
//! `GET /metrics`.
//!
//! Everything is lock-free (`AtomicU64`): workers record on the hot path,
//! the metrics endpoint takes a consistent-enough snapshot without stopping
//! them.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Acquires `mutex`, recovering the guard (and counting the recovery in
/// `recoveries`) if a panicking thread poisoned it. Callers are responsible
/// for restoring any invariant the interrupted critical section might have
/// broken — every client-visible lock in this crate goes through here, so a
/// single panic can never cascade into a total outage via poison
/// propagation.
pub fn lock_recover<'a, T>(mutex: &'a Mutex<T>, recoveries: &AtomicU64) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// [`lock_recover`] for the poisoned result of a [`std::sync::Condvar`]
/// wait, which hands the guard back through the same poison envelope.
pub fn wait_recover<'a, T>(
    result: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
    recoveries: &AtomicU64,
) -> MutexGuard<'a, T> {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => {
            recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` µs, the last bucket is open-ended (~2.3 min and up).
const NUM_BUCKETS: usize = 28;

/// Per-shard accept counters tracked in `/metrics`; shards beyond this fold
/// into their `shard_id % 16` slot.
pub const MAX_TRACKED_SHARDS: usize = 16;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Snapshot with approximate quantiles (upper bucket bounds, so the
    /// estimate never under-reports).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return 1u64 << (i + 1); // upper bound of bucket i
                }
            }
            1u64 << NUM_BUCKETS
        };
        HistogramSnapshot {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                sum_us as f64 / count as f64
            },
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            buckets,
        }
    }
}

/// Serialisable view of a [`LatencyHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median upper-bound estimate, microseconds.
    pub p50_us: u64,
    /// 99th-percentile upper-bound estimate, microseconds.
    pub p99_us: u64,
    /// Raw bucket counts (`buckets[i]` covers `[2^i, 2^(i+1))` µs).
    pub buckets: Vec<u64>,
}

/// All service counters. One instance is shared by the queue, the workers,
/// the engine, and the HTTP front-end.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests that reached `POST /solve` (admitted or not).
    pub requests_total: AtomicU64,
    /// Requests answered with a solution.
    pub solved_total: AtomicU64,
    /// Typed rejections: admission queue at depth.
    pub rejected_queue_full: AtomicU64,
    /// Typed rejections: server draining.
    pub rejected_shutdown: AtomicU64,
    /// Typed rejections: deadline expired while queued.
    pub rejected_deadline: AtomicU64,
    /// Typed rejections: malformed request bodies.
    pub rejected_invalid: AtomicU64,
    /// Typed rejections: admitted but no backend could answer.
    pub rejected_unsolvable: AtomicU64,
    /// Typed rejections: worker panic isolated into a `500 internal_error`.
    pub rejected_internal: AtomicU64,
    /// Typed rejections: every candidate backend breaker-open or failed.
    pub rejected_unavailable: AtomicU64,
    /// Typed rejections: whole-request deadline expired mid-read (408).
    pub rejected_request_timeout: AtomicU64,
    /// Typed rejections: request-line/header caps exceeded (431).
    pub rejected_header_limit: AtomicU64,
    /// Connections shed at accept time by the connection cap (503).
    pub connections_shed: AtomicU64,
    /// Connections currently being served (gauge).
    pub connections_active: AtomicU64,
    /// Connections accepted by the event loop (shed connections excluded).
    pub connections_accepted: AtomicU64,
    /// Keep-alive reuses: requests parsed on a connection that had already
    /// served at least one request.
    pub connections_reused: AtomicU64,
    /// Requests parsed while an earlier request on the same connection was
    /// still in flight (HTTP/1.1 pipelining).
    pub pipelined_requests: AtomicU64,
    /// Times the event loop woke from `poll` (readiness, wakeup byte, or
    /// timeout tick).
    pub event_loop_wakeups: AtomicU64,
    /// Accepts per event-loop shard (slot = `shard_id % 16`).
    pub shard_accepts: [AtomicU64; MAX_TRACKED_SHARDS],
    /// Requests served per connection, recorded when the connection closes
    /// (log₂ buckets; the `_us` field names are generic counts here).
    pub requests_per_connection: LatencyHistogram,
    /// Worker panics caught and isolated by `catch_unwind`.
    pub worker_panics_caught: AtomicU64,
    /// Dead worker threads respawned by the supervisor.
    pub worker_respawns: AtomicU64,
    /// Connection-handler panics caught at the HTTP front-end.
    pub conn_panics_caught: AtomicU64,
    /// Chaos: worker panics injected by the chaos layer.
    pub chaos_panics_injected: AtomicU64,
    /// Chaos: caught panics escalated into worker deaths.
    pub chaos_kills_injected: AtomicU64,
    /// Chaos: backend attempts failed by the chaos layer.
    pub chaos_backend_failures_injected: AtomicU64,
    /// Chaos: successful answers corrupted at the API boundary.
    pub chaos_corruptions_injected: AtomicU64,
    /// Chaos: `mqo_serve` cell processes SIGKILLed by the fleet kill
    /// schedule (router-side supervision chaos, DESIGN.md §14).
    pub chaos_cell_kills_injected: AtomicU64,
    /// Supervisor: dead cell processes respawned.
    pub cell_respawns: AtomicU64,
    /// Supervisor: cells quarantined after a crash loop (their shard range
    /// is remapped to healthy cells).
    pub crash_loops_quarantined: AtomicU64,
    /// Supervisor: deadline-bounded `/healthz` probes that failed.
    pub health_probe_failures: AtomicU64,
    /// Router: requests that completed on a fallback cell after at least
    /// one failed or 5xx attempt on another cell (transparent replay).
    pub failovers: AtomicU64,
    /// Router: replays abandoned because the client's remaining deadline
    /// budget ran out.
    pub deadline_budget_exhausted: AtomicU64,
    /// Router: idempotent `(structure, weights, seed)` repeats answered
    /// from the router's response cache without touching a cell.
    pub router_cache_hits: AtomicU64,
    /// Router: solve requests that had to be forwarded to a cell.
    pub router_cache_misses: AtomicU64,
    /// Backend answers that failed the integrity gate (infeasible selection
    /// or cost mismatch) — repaired + rejected.
    pub integrity_violations: AtomicU64,
    /// Gate failures deterministically repaired and re-verified before
    /// serving.
    pub integrity_repairs: AtomicU64,
    /// Gate failures withheld as a typed `500 integrity_violation`.
    pub integrity_rejects: AtomicU64,
    /// Annealer reads whose decoded selection was feasible as sampled.
    pub reads_verified_clean: AtomicU64,
    /// Annealer reads whose decoded selection needed repair.
    pub reads_repaired: AtomicU64,
    /// Annealer reads with at least one broken chain.
    pub reads_broken_chains: AtomicU64,
    /// Broken chains resolved by a strict majority vote during unembedding.
    pub chain_majority_repairs: AtomicU64,
    /// Even-length chain ties resolved by the pinned all-true rule.
    pub chain_tie_breaks: AtomicU64,
    /// Backend attempts that failed (real and injected), across backends.
    pub backend_attempt_failures: AtomicU64,
    /// Requests whose first-choice backend was skipped by an open breaker.
    pub breaker_skips: AtomicU64,
    /// Poisoned locks recovered instead of propagating the poison.
    pub lock_poison_recoveries: AtomicU64,
    /// Embedding-cache hits (embedding reused, weights rewritten).
    pub cache_hits: AtomicU64,
    /// Embedding-cache misses (full placement performed).
    pub cache_misses: AtomicU64,
    /// Embedding-cache LRU evictions.
    pub cache_evictions: AtomicU64,
    /// Requests answered by the annealer backend.
    pub backend_annealer: AtomicU64,
    /// Requests answered by the MILP backend.
    pub backend_milp: AtomicU64,
    /// Requests answered by the hill-climbing backend.
    pub backend_hill_climbing: AtomicU64,
    /// Batches dispatched by the scheduler.
    pub batches_dispatched: AtomicU64,
    /// Composite multi-tenant programming cycles executed.
    pub packed_batches: AtomicU64,
    /// Requests answered from a packed cycle.
    pub tenants_packed: AtomicU64,
    /// Requests the packer declined (no free fault-clean region).
    pub packing_declines: AtomicU64,
    /// Requests currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// End-to-end solve latency (dequeue → response ready).
    pub solve_latency: LatencyHistogram,
    /// Time spent waiting in the admission queue.
    pub queue_wait: LatencyHistogram,
}

impl Metrics {
    /// Increments a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter (per-run read accounting).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a serialisable snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests_total: load(&self.requests_total),
            solved_total: load(&self.solved_total),
            rejected_queue_full: load(&self.rejected_queue_full),
            rejected_shutdown: load(&self.rejected_shutdown),
            rejected_deadline: load(&self.rejected_deadline),
            rejected_invalid: load(&self.rejected_invalid),
            rejected_unsolvable: load(&self.rejected_unsolvable),
            rejected_internal: load(&self.rejected_internal),
            rejected_unavailable: load(&self.rejected_unavailable),
            rejected_request_timeout: load(&self.rejected_request_timeout),
            rejected_header_limit: load(&self.rejected_header_limit),
            connections_shed: load(&self.connections_shed),
            connections_active: load(&self.connections_active),
            connections_accepted: load(&self.connections_accepted),
            connections_reused: load(&self.connections_reused),
            pipelined_requests: load(&self.pipelined_requests),
            event_loop_wakeups: load(&self.event_loop_wakeups),
            shard_accepts: self.shard_accepts.iter().map(load).collect(),
            requests_per_connection: self.requests_per_connection.snapshot(),
            worker_panics_caught: load(&self.worker_panics_caught),
            worker_respawns: load(&self.worker_respawns),
            conn_panics_caught: load(&self.conn_panics_caught),
            chaos_panics_injected: load(&self.chaos_panics_injected),
            chaos_kills_injected: load(&self.chaos_kills_injected),
            chaos_backend_failures_injected: load(&self.chaos_backend_failures_injected),
            chaos_corruptions_injected: load(&self.chaos_corruptions_injected),
            chaos_cell_kills_injected: load(&self.chaos_cell_kills_injected),
            cell_respawns: load(&self.cell_respawns),
            crash_loops_quarantined: load(&self.crash_loops_quarantined),
            health_probe_failures: load(&self.health_probe_failures),
            failovers: load(&self.failovers),
            deadline_budget_exhausted: load(&self.deadline_budget_exhausted),
            router_cache_hits: load(&self.router_cache_hits),
            router_cache_misses: load(&self.router_cache_misses),
            integrity_violations: load(&self.integrity_violations),
            integrity_repairs: load(&self.integrity_repairs),
            integrity_rejects: load(&self.integrity_rejects),
            reads_verified_clean: load(&self.reads_verified_clean),
            reads_repaired: load(&self.reads_repaired),
            reads_broken_chains: load(&self.reads_broken_chains),
            chain_majority_repairs: load(&self.chain_majority_repairs),
            chain_tie_breaks: load(&self.chain_tie_breaks),
            backend_attempt_failures: load(&self.backend_attempt_failures),
            breaker_skips: load(&self.breaker_skips),
            lock_poison_recoveries: load(&self.lock_poison_recoveries),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            cache_evictions: load(&self.cache_evictions),
            backend_annealer: load(&self.backend_annealer),
            backend_milp: load(&self.backend_milp),
            backend_hill_climbing: load(&self.backend_hill_climbing),
            batches_dispatched: load(&self.batches_dispatched),
            packed_batches: load(&self.packed_batches),
            tenants_packed: load(&self.tenants_packed),
            packing_declines: load(&self.packing_declines),
            tenants_per_cycle: {
                let batches = load(&self.packed_batches);
                if batches == 0 {
                    0.0
                } else {
                    load(&self.tenants_packed) as f64 / batches as f64
                }
            },
            queue_depth: load(&self.queue_depth),
            solve_latency: self.solve_latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
        }
    }
}

/// Serialisable view of [`Metrics`] — the `GET /metrics` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests that reached `POST /solve`.
    pub requests_total: u64,
    /// Requests answered with a solution.
    pub solved_total: u64,
    /// Rejections: queue at depth.
    pub rejected_queue_full: u64,
    /// Rejections: server draining.
    pub rejected_shutdown: u64,
    /// Rejections: deadline expired in queue.
    pub rejected_deadline: u64,
    /// Rejections: malformed bodies.
    pub rejected_invalid: u64,
    /// Rejections: no backend could answer.
    pub rejected_unsolvable: u64,
    /// Rejections: isolated worker panics (500).
    pub rejected_internal: u64,
    /// Rejections: all backends breaker-open or failed (503).
    pub rejected_unavailable: u64,
    /// Rejections: whole-request deadline expired (408).
    pub rejected_request_timeout: u64,
    /// Rejections: request-line/header caps (431).
    pub rejected_header_limit: u64,
    /// Connections shed by the accept-loop cap (503).
    pub connections_shed: u64,
    /// Connections being served right now (gauge).
    pub connections_active: u64,
    /// Connections accepted by the event loop.
    #[serde(default)]
    pub connections_accepted: u64,
    /// Keep-alive reuses (second and later requests on one connection).
    #[serde(default)]
    pub connections_reused: u64,
    /// Requests pipelined behind an in-flight request.
    #[serde(default)]
    pub pipelined_requests: u64,
    /// Event-loop wakeups from `poll`.
    #[serde(default)]
    pub event_loop_wakeups: u64,
    /// Accepts per event-loop shard (`shard_id % 16` slots).
    #[serde(default)]
    pub shard_accepts: Vec<u64>,
    /// Requests served per connection at close time (log₂ buckets).
    #[serde(default)]
    pub requests_per_connection: HistogramSnapshot,
    /// Worker panics caught and isolated.
    pub worker_panics_caught: u64,
    /// Worker threads respawned by the supervisor.
    pub worker_respawns: u64,
    /// Connection-handler panics caught.
    pub conn_panics_caught: u64,
    /// Chaos-injected worker panics.
    pub chaos_panics_injected: u64,
    /// Chaos-injected worker deaths.
    pub chaos_kills_injected: u64,
    /// Chaos-injected backend failures.
    pub chaos_backend_failures_injected: u64,
    /// Chaos-corrupted answers injected at the API boundary.
    #[serde(default)]
    pub chaos_corruptions_injected: u64,
    /// Chaos-SIGKILLed cell processes (fleet kill schedule).
    #[serde(default)]
    pub chaos_cell_kills_injected: u64,
    /// Cell processes respawned by the fleet supervisor.
    #[serde(default)]
    pub cell_respawns: u64,
    /// Cells quarantined after a crash loop.
    #[serde(default)]
    pub crash_loops_quarantined: u64,
    /// Failed deadline-bounded `/healthz` probes.
    #[serde(default)]
    pub health_probe_failures: u64,
    /// Requests completed via transparent replay on a fallback cell.
    #[serde(default)]
    pub failovers: u64,
    /// Replays abandoned on an exhausted deadline budget.
    #[serde(default)]
    pub deadline_budget_exhausted: u64,
    /// Router response-cache hits (idempotent repeats, no cell touched).
    #[serde(default)]
    pub router_cache_hits: u64,
    /// Router response-cache misses (request forwarded to a cell).
    #[serde(default)]
    pub router_cache_misses: u64,
    /// Answers that failed the integrity gate.
    #[serde(default)]
    pub integrity_violations: u64,
    /// Gate failures repaired and re-verified.
    #[serde(default)]
    pub integrity_repairs: u64,
    /// Gate failures withheld as typed 500s.
    #[serde(default)]
    pub integrity_rejects: u64,
    /// Reads decoded feasible as sampled.
    #[serde(default)]
    pub reads_verified_clean: u64,
    /// Reads whose decode needed repair.
    #[serde(default)]
    pub reads_repaired: u64,
    /// Reads with broken chains.
    #[serde(default)]
    pub reads_broken_chains: u64,
    /// Majority-vote chain repairs.
    #[serde(default)]
    pub chain_majority_repairs: u64,
    /// Even-chain tie-breaks.
    #[serde(default)]
    pub chain_tie_breaks: u64,
    /// Failed backend attempts (real + injected).
    pub backend_attempt_failures: u64,
    /// First-choice backends skipped by an open breaker.
    pub breaker_skips: u64,
    /// Poisoned locks recovered.
    pub lock_poison_recoveries: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Embedding-cache evictions.
    pub cache_evictions: u64,
    /// Annealer-backend answers.
    pub backend_annealer: u64,
    /// MILP-backend answers.
    pub backend_milp: u64,
    /// Hill-climbing answers.
    pub backend_hill_climbing: u64,
    /// Batches dispatched by the scheduler.
    pub batches_dispatched: u64,
    /// Composite multi-tenant programming cycles executed.
    #[serde(default)]
    pub packed_batches: u64,
    /// Requests answered from a packed cycle.
    #[serde(default)]
    pub tenants_packed: u64,
    /// Requests the packer declined (no free fault-clean region).
    #[serde(default)]
    pub packing_declines: u64,
    /// Mean tenants per packed cycle (0.0 before the first cycle).
    #[serde(default)]
    pub tenants_per_cycle: f64,
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Solve latency histogram.
    pub solve_latency: HistogramSnapshot,
    /// Queue-wait histogram.
    pub queue_wait: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        // 99 fast observations, 1 slow one.
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1_000_000); // ~2^20 µs
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 128, "median upper bound of the fast bucket");
        assert!(
            s.p99_us <= 128,
            "p99 rank 99 still lands in the fast bucket"
        );
        assert!((s.mean_us - (99.0 * 100.0 + 1_000_000.0) / 100.0).abs() < 1e-9);
        assert_eq!(s.buckets.iter().sum::<u64>(), 100);
    }

    #[test]
    fn zero_latency_is_clamped_into_the_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.buckets[0], 1);
    }

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        use std::sync::Arc;
        let mutex = Arc::new(Mutex::new(41));
        let recoveries = AtomicU64::new(0);
        let m2 = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(mutex.is_poisoned());
        *lock_recover(&mutex, &recoveries) += 1;
        assert_eq!(*lock_recover(&mutex, &recoveries), 42);
        assert_eq!(recoveries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let m = Metrics::default();
        Metrics::inc(&m.requests_total);
        m.solve_latency.record(500);
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        assert!(json.contains("\"requests_total\":1"));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests_total, 1);
        assert_eq!(back.solve_latency.count, 1);
    }
}
