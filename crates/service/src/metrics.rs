//! Service counters and latency histograms, exported as JSON on
//! `GET /metrics`.
//!
//! Everything is lock-free (`AtomicU64`): workers record on the hot path,
//! the metrics endpoint takes a consistent-enough snapshot without stopping
//! them.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` µs, the last bucket is open-ended (~2.3 min and up).
const NUM_BUCKETS: usize = 28;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Snapshot with approximate quantiles (upper bucket bounds, so the
    /// estimate never under-reports).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return 1u64 << (i + 1); // upper bound of bucket i
                }
            }
            1u64 << NUM_BUCKETS
        };
        HistogramSnapshot {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                sum_us as f64 / count as f64
            },
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            buckets,
        }
    }
}

/// Serialisable view of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median upper-bound estimate, microseconds.
    pub p50_us: u64,
    /// 99th-percentile upper-bound estimate, microseconds.
    pub p99_us: u64,
    /// Raw bucket counts (`buckets[i]` covers `[2^i, 2^(i+1))` µs).
    pub buckets: Vec<u64>,
}

/// All service counters. One instance is shared by the queue, the workers,
/// the engine, and the HTTP front-end.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests that reached `POST /solve` (admitted or not).
    pub requests_total: AtomicU64,
    /// Requests answered with a solution.
    pub solved_total: AtomicU64,
    /// Typed rejections: admission queue at depth.
    pub rejected_queue_full: AtomicU64,
    /// Typed rejections: server draining.
    pub rejected_shutdown: AtomicU64,
    /// Typed rejections: deadline expired while queued.
    pub rejected_deadline: AtomicU64,
    /// Typed rejections: malformed request bodies.
    pub rejected_invalid: AtomicU64,
    /// Typed rejections: admitted but no backend could answer.
    pub rejected_unsolvable: AtomicU64,
    /// Embedding-cache hits (embedding reused, weights rewritten).
    pub cache_hits: AtomicU64,
    /// Embedding-cache misses (full placement performed).
    pub cache_misses: AtomicU64,
    /// Embedding-cache LRU evictions.
    pub cache_evictions: AtomicU64,
    /// Requests answered by the annealer backend.
    pub backend_annealer: AtomicU64,
    /// Requests answered by the MILP backend.
    pub backend_milp: AtomicU64,
    /// Requests answered by the hill-climbing backend.
    pub backend_hill_climbing: AtomicU64,
    /// Batches dispatched by the scheduler.
    pub batches_dispatched: AtomicU64,
    /// Requests currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// End-to-end solve latency (dequeue → response ready).
    pub solve_latency: LatencyHistogram,
    /// Time spent waiting in the admission queue.
    pub queue_wait: LatencyHistogram,
}

impl Metrics {
    /// Increments a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a serialisable snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests_total: load(&self.requests_total),
            solved_total: load(&self.solved_total),
            rejected_queue_full: load(&self.rejected_queue_full),
            rejected_shutdown: load(&self.rejected_shutdown),
            rejected_deadline: load(&self.rejected_deadline),
            rejected_invalid: load(&self.rejected_invalid),
            rejected_unsolvable: load(&self.rejected_unsolvable),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            cache_evictions: load(&self.cache_evictions),
            backend_annealer: load(&self.backend_annealer),
            backend_milp: load(&self.backend_milp),
            backend_hill_climbing: load(&self.backend_hill_climbing),
            batches_dispatched: load(&self.batches_dispatched),
            queue_depth: load(&self.queue_depth),
            solve_latency: self.solve_latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
        }
    }
}

/// Serialisable view of [`Metrics`] — the `GET /metrics` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests that reached `POST /solve`.
    pub requests_total: u64,
    /// Requests answered with a solution.
    pub solved_total: u64,
    /// Rejections: queue at depth.
    pub rejected_queue_full: u64,
    /// Rejections: server draining.
    pub rejected_shutdown: u64,
    /// Rejections: deadline expired in queue.
    pub rejected_deadline: u64,
    /// Rejections: malformed bodies.
    pub rejected_invalid: u64,
    /// Rejections: no backend could answer.
    pub rejected_unsolvable: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Embedding-cache evictions.
    pub cache_evictions: u64,
    /// Annealer-backend answers.
    pub backend_annealer: u64,
    /// MILP-backend answers.
    pub backend_milp: u64,
    /// Hill-climbing answers.
    pub backend_hill_climbing: u64,
    /// Batches dispatched by the scheduler.
    pub batches_dispatched: u64,
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Solve latency histogram.
    pub solve_latency: HistogramSnapshot,
    /// Queue-wait histogram.
    pub queue_wait: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        // 99 fast observations, 1 slow one.
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1_000_000); // ~2^20 µs
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 128, "median upper bound of the fast bucket");
        assert!(
            s.p99_us <= 128,
            "p99 rank 99 still lands in the fast bucket"
        );
        assert!((s.mean_us - (99.0 * 100.0 + 1_000_000.0) / 100.0).abs() < 1e-9);
        assert_eq!(s.buckets.iter().sum::<u64>(), 100);
    }

    #[test]
    fn zero_latency_is_clamped_into_the_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.buckets[0], 1);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let m = Metrics::default();
        Metrics::inc(&m.requests_total);
        m.solve_latency.record(500);
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        assert!(json.contains("\"requests_total\":1"));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests_total, 1);
        assert_eq!(back.solve_latency.count, 1);
    }
}
