//! Fleet supervision: cell processes as a managed, self-healing resource.
//!
//! The router (PR 9) shards solves across `mqo_serve` *cells* but treats
//! them as externally managed: a dead cell stays dead and only breaker
//! fall-through hides it. This module closes the loop (DESIGN.md §14): the
//! supervisor spawns every cell as a **child process** from a per-cell
//! command template, watches it through two independent signals —
//!
//! * **process exit** (`try_wait`): the child died, whatever the reason
//!   (SIGKILL from the chaos schedule, OOM, a crash bug);
//! * **deadline-bounded `/healthz` probes**: the process is alive but not
//!   answering (wedged accept loop, livelock) — after
//!   `probe_failure_threshold` consecutive probe failures the supervisor
//!   kills it and treats it as crashed;
//!
//! — and respawns it with exponential backoff. A cell that keeps dying
//! right after starting (`crash_loop_threshold` rapid crashes, each within
//! `crash_loop_window_ms` of its spawn) is **quarantined**: its process is
//! reaped, no further respawns are attempted, and a shared per-cell flag
//! tells the router's fleet to skip it during shard fall-through — the
//! cell's shard range is thereby remapped onto the healthy cells.
//!
//! The supervisor also executes the deterministic cell-kill schedule
//! ([`crate::chaos::CellKillSchedule`]): SIGKILLs delivered to seeded cells
//! at seeded offsets, so recovery behaviour is reproducible run-to-run.
//!
//! The pure respawn/quarantine policy lives in [`RespawnPolicy`] so the
//! state machine is unit-testable without spawning a single process.

use crate::chaos::CellKillSchedule;
use crate::http::{read_response, render_request};
use crate::metrics::{lock_recover, Metrics};
use std::io::Write;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Placeholder in a cell command template replaced by the cell's address.
pub const ADDR_PLACEHOLDER: &str = "{addr}";

/// Fleet-supervision configuration.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// One command template per cell (argv form, first element is the
    /// program). Every occurrence of `{addr}` in any element is replaced by
    /// the cell's address before spawning.
    pub commands: Vec<Vec<String>>,
    /// Cell addresses, index-aligned with `commands` (and with the
    /// router's cell order).
    pub cells: Vec<String>,
    /// Milliseconds between `/healthz` probes of a live cell.
    pub probe_interval_ms: u64,
    /// Probe connect/read deadline, milliseconds.
    pub probe_timeout_ms: u64,
    /// Consecutive probe failures after which a live-but-unresponsive cell
    /// is killed and treated as crashed. `0` disables probing.
    pub probe_failure_threshold: u32,
    /// First respawn backoff, milliseconds (doubles per rapid crash).
    pub backoff_initial_ms: u64,
    /// Respawn backoff cap, milliseconds.
    pub backoff_max_ms: u64,
    /// Rapid crashes (uptime below `crash_loop_window_ms`) that quarantine
    /// a cell. `0` disables quarantine (the cell respawns forever).
    pub crash_loop_threshold: u32,
    /// A crash with uptime below this window counts as rapid, milliseconds.
    pub crash_loop_window_ms: u64,
    /// How long `wait_ready` allows the initial fleet to become healthy,
    /// milliseconds.
    pub startup_timeout_ms: u64,
    /// Deterministic SIGKILL schedule executed against the fleet
    /// (inert by default).
    pub kill_schedule: CellKillSchedule,
}

impl SupervisorConfig {
    /// A supervisor over `cells`, every cell spawned from the same
    /// `command` template, with conservative defaults.
    #[must_use]
    pub fn new(command: Vec<String>, cells: Vec<String>) -> Self {
        SupervisorConfig {
            commands: vec![command; cells.len()],
            cells,
            probe_interval_ms: 200,
            probe_timeout_ms: 500,
            probe_failure_threshold: 3,
            backoff_initial_ms: 100,
            backoff_max_ms: 5_000,
            crash_loop_threshold: 5,
            crash_loop_window_ms: 10_000,
            startup_timeout_ms: 30_000,
            kill_schedule: CellKillSchedule::default(),
        }
    }

    /// Validates the template/cell pairing before any process is spawned.
    pub fn validate(&self) -> Result<(), String> {
        if self.cells.is_empty() {
            return Err("supervisor needs at least one cell".to_string());
        }
        if self.commands.len() != self.cells.len() {
            return Err(format!(
                "supervisor has {} command templates for {} cells",
                self.commands.len(),
                self.cells.len()
            ));
        }
        if let Some(idx) = self.commands.iter().position(Vec::is_empty) {
            return Err(format!("cell {idx} has an empty command template"));
        }
        self.kill_schedule.validate().map_err(str::to_string)
    }
}

/// What the policy decides about a crashed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespawnVerdict {
    /// Respawn after this backoff.
    Respawn {
        /// Milliseconds to wait before the respawn.
        delay_ms: u64,
    },
    /// The cell is crash-looping: stop respawning, remap its shard range.
    Quarantine,
}

/// The pure respawn/quarantine policy: exponential backoff over *rapid*
/// crashes (a healthy uptime resets the run), quarantine when the run
/// reaches the crash-loop threshold. Separated from the process machinery
/// so every branch is unit-testable.
#[derive(Debug, Clone, Copy)]
pub struct RespawnPolicy {
    /// First backoff, milliseconds.
    pub backoff_initial_ms: u64,
    /// Backoff cap, milliseconds.
    pub backoff_max_ms: u64,
    /// Rapid crashes that quarantine (0 = never quarantine).
    pub crash_loop_threshold: u32,
    /// Uptime below this counts as a rapid crash, milliseconds.
    pub crash_loop_window_ms: u64,
}

impl RespawnPolicy {
    /// The rapid-crash run after a crash with the given uptime: a crash
    /// within the window extends the run, a healthy stretch resets it to 1.
    #[must_use]
    pub fn next_run(&self, uptime_ms: u64, rapid_crashes: u32) -> u32 {
        if uptime_ms < self.crash_loop_window_ms {
            rapid_crashes.saturating_add(1)
        } else {
            1
        }
    }

    /// Backoff before respawn number `rapid_crashes` of a run: doubles per
    /// crash from `backoff_initial_ms`, capped at `backoff_max_ms`.
    #[must_use]
    pub fn backoff_ms(&self, rapid_crashes: u32) -> u64 {
        let doublings = rapid_crashes.saturating_sub(1).min(63);
        self.backoff_initial_ms
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_max_ms)
    }

    /// Verdict for a crash: the uptime extends (or resets) the rapid-crash
    /// run, and a run at the threshold quarantines the cell.
    #[must_use]
    pub fn verdict(&self, uptime_ms: u64, rapid_crashes: u32) -> (RespawnVerdict, u32) {
        let run = self.next_run(uptime_ms, rapid_crashes);
        if self.crash_loop_threshold > 0 && run >= self.crash_loop_threshold {
            (RespawnVerdict::Quarantine, run)
        } else {
            (
                RespawnVerdict::Respawn {
                    delay_ms: self.backoff_ms(run),
                },
                run,
            )
        }
    }
}

/// One supervised cell's process state.
struct CellProcess {
    addr: String,
    command: Vec<String>,
    child: Option<Child>,
    spawned_at: Instant,
    /// Pending respawn: spawn when this instant passes.
    respawn_due: Option<Instant>,
    rapid_crashes: u32,
    consecutive_probe_failures: u32,
    last_probe: Instant,
    /// Whether this cell ever answered a probe since its last spawn — the
    /// startup gate waits on this.
    healthy_once: bool,
    respawns: u64,
    probe_failures: u64,
    last_exit: Option<String>,
}

/// Serialisable per-cell supervision state, reported in the router's
/// `/metrics` under `"supervisor"`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SupervisedCellSnapshot {
    /// The cell's address.
    pub addr: String,
    /// Whether a child process is currently running.
    pub alive: bool,
    /// Whether the cell is quarantined (shard range remapped away).
    pub quarantined: bool,
    /// Times this cell was respawned.
    pub respawns: u64,
    /// Failed health probes against this cell.
    pub probe_failures: u64,
    /// Length of the current rapid-crash run.
    pub rapid_crashes: u32,
    /// Exit status of the last observed death, if any.
    pub last_exit: Option<String>,
}

/// Shared state between the supervisor handle and its monitor thread.
struct Shared {
    cells: Vec<Mutex<CellProcess>>,
    quarantined: Arc<Vec<AtomicBool>>,
    policy: RespawnPolicy,
    config: SupervisorConfig,
    metrics: Arc<Metrics>,
    stop: AtomicBool,
    lock_recoveries: AtomicU64,
}

/// A running fleet supervisor. Dropping it kills every remaining child —
/// supervised cells never outlive their supervisor.
pub struct Supervisor {
    shared: Arc<Shared>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("cells", &self.shared.config.cells)
            .finish()
    }
}

/// Monitor scan period: bounds both kill-schedule jitter and crash
/// detection latency.
const TICK: Duration = Duration::from_millis(20);

impl Supervisor {
    /// Spawns every cell and the monitor thread. Call
    /// [`Supervisor::wait_ready`] before routing traffic.
    ///
    /// `metrics` receives the fleet counters (`cell_respawns`,
    /// `crash_loops_quarantined`, `health_probe_failures`,
    /// `chaos_cell_kills_injected`) — pass the router's metrics handle so
    /// they surface under its `/metrics`.
    pub fn start(config: SupervisorConfig, metrics: Arc<Metrics>) -> Result<Supervisor, String> {
        config.validate()?;
        let policy = RespawnPolicy {
            backoff_initial_ms: config.backoff_initial_ms,
            backoff_max_ms: config.backoff_max_ms,
            crash_loop_threshold: config.crash_loop_threshold,
            crash_loop_window_ms: config.crash_loop_window_ms,
        };
        let now = Instant::now();
        let mut cells = Vec::with_capacity(config.cells.len());
        for (addr, command) in config.cells.iter().zip(&config.commands) {
            let mut cell = CellProcess {
                addr: addr.clone(),
                command: command.clone(),
                child: None,
                spawned_at: now,
                respawn_due: None,
                rapid_crashes: 0,
                consecutive_probe_failures: 0,
                last_probe: now,
                healthy_once: false,
                respawns: 0,
                probe_failures: 0,
                last_exit: None,
            };
            spawn_cell(&mut cell);
            cells.push(Mutex::new(cell));
        }
        let quarantined = Arc::new(
            (0..config.cells.len())
                .map(|_| AtomicBool::new(false))
                .collect::<Vec<_>>(),
        );
        let shared = Arc::new(Shared {
            cells,
            quarantined,
            policy,
            config,
            metrics,
            stop: AtomicBool::new(false),
            lock_recoveries: AtomicU64::new(0),
        });
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mqo-supervisor".to_string())
                .spawn(move || monitor_loop(&shared))
                .map_err(|e| format!("cannot spawn supervisor monitor: {e}"))?
        };
        Ok(Supervisor {
            shared,
            monitor: Mutex::new(Some(monitor)),
        })
    }

    /// Blocks until every cell has either answered a `/healthz` probe or
    /// been quarantined, or the startup timeout elapsed. At least one cell
    /// must be healthy for the fleet to be usable.
    pub fn wait_ready(&self) -> Result<(), String> {
        let deadline =
            Instant::now() + Duration::from_millis(self.shared.config.startup_timeout_ms);
        loop {
            let mut healthy = 0usize;
            let mut settled = 0usize;
            for (idx, cell) in self.shared.cells.iter().enumerate() {
                if self.shared.quarantined[idx].load(Ordering::SeqCst) {
                    settled += 1;
                    continue;
                }
                let mut cell = lock_recover(cell, &self.shared.lock_recoveries);
                // With probing disabled the monitor never marks health, so
                // the startup gate probes directly.
                if !cell.healthy_once && self.shared.config.probe_failure_threshold == 0 {
                    let timeout = Duration::from_millis(self.shared.config.probe_timeout_ms.max(1));
                    if probe(&cell.addr, "GET", "/healthz", timeout) {
                        cell.healthy_once = true;
                    }
                }
                if cell.healthy_once {
                    healthy += 1;
                    settled += 1;
                }
            }
            if settled == self.shared.cells.len() {
                return if healthy > 0 {
                    Ok(())
                } else {
                    Err("every supervised cell was quarantined at startup".to_string())
                };
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "supervised fleet not ready within {} ms ({healthy}/{} cells healthy)",
                    self.shared.config.startup_timeout_ms,
                    self.shared.cells.len()
                ));
            }
            std::thread::sleep(TICK);
        }
    }

    /// Per-cell quarantine flags, index-aligned with the cell list. The
    /// router's fleet holds a clone and skips flagged cells during shard
    /// fall-through — that skip *is* the shard-range remap.
    #[must_use]
    pub fn quarantine_flags(&self) -> Arc<Vec<AtomicBool>> {
        Arc::clone(&self.shared.quarantined)
    }

    /// SIGKILLs cell `idx`'s process (no graceful drain — that is the
    /// point). The monitor observes the death and schedules the respawn.
    /// Used by the kill-chaos tests; the seeded schedule goes through the
    /// same path.
    pub fn kill_cell(&self, idx: usize) {
        if let Some(cell) = self.shared.cells.get(idx) {
            let mut cell = lock_recover(cell, &self.shared.lock_recoveries);
            if let Some(child) = cell.child.as_mut() {
                let _ = child.kill();
            }
        }
    }

    /// Serialisable supervision state of every cell.
    #[must_use]
    pub fn snapshots(&self) -> Vec<SupervisedCellSnapshot> {
        self.shared
            .cells
            .iter()
            .enumerate()
            .map(|(idx, cell)| {
                let mut cell = lock_recover(cell, &self.shared.lock_recoveries);
                let alive = match cell.child.as_mut() {
                    Some(child) => child.try_wait().ok().flatten().is_none(),
                    None => false,
                };
                SupervisedCellSnapshot {
                    addr: cell.addr.clone(),
                    alive,
                    quarantined: self.shared.quarantined[idx].load(Ordering::SeqCst),
                    respawns: cell.respawns,
                    probe_failures: cell.probe_failures,
                    rapid_crashes: cell.rapid_crashes,
                    last_exit: cell.last_exit.clone(),
                }
            })
            .collect()
    }

    /// Stops the monitor, asks every live cell to drain (`POST /shutdown`
    /// with the probe deadline), waits briefly, then kills stragglers.
    /// Returns one line per cell describing how it went down.
    pub fn shutdown(&self) -> Vec<String> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = lock_recover(&self.monitor, &self.shared.lock_recoveries).take() {
            let _ = handle.join();
        }
        let timeout = Duration::from_millis(self.shared.config.probe_timeout_ms.max(1));
        let mut report = Vec::with_capacity(self.shared.cells.len());
        for cell in &self.shared.cells {
            let mut cell = lock_recover(cell, &self.shared.lock_recoveries);
            let Some(mut child) = cell.child.take() else {
                report.push(format!("cell {}: already down", cell.addr));
                continue;
            };
            let drained = probe(&cell.addr, "POST", "/shutdown", timeout);
            // Give a drained cell up to ~2 s to exit on its own.
            let mut exited = false;
            if drained {
                for _ in 0..100 {
                    if matches!(child.try_wait(), Ok(Some(_))) {
                        exited = true;
                        break;
                    }
                    std::thread::sleep(TICK);
                }
            }
            if exited {
                report.push(format!("cell {}: drained and stopped", cell.addr));
            } else {
                let _ = child.kill();
                let _ = child.wait();
                report.push(format!("cell {}: killed", cell.addr));
            }
        }
        report
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = lock_recover(&self.monitor, &self.shared.lock_recoveries).take() {
            let _ = handle.join();
        }
        for cell in &self.shared.cells {
            let mut cell = lock_recover(cell, &self.shared.lock_recoveries);
            if let Some(mut child) = cell.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Spawns (or respawns) a cell's process from its template. A spawn error
/// is recorded as an instant exit so the crash-loop policy sees it.
fn spawn_cell(cell: &mut CellProcess) {
    let argv: Vec<String> = cell
        .command
        .iter()
        .map(|part| part.replace(ADDR_PLACEHOLDER, &cell.addr))
        .collect();
    cell.spawned_at = Instant::now();
    cell.respawn_due = None;
    cell.consecutive_probe_failures = 0;
    cell.healthy_once = false;
    cell.last_probe = cell.spawned_at;
    // Stdin is a pipe this process holds open (the `Child` keeps the write
    // end): if the supervisor dies — even by SIGKILL, where no cleanup
    // runs — the pipe closes and a watchdog-aware cell (`MQO_SUPERVISED`)
    // sees EOF and drains itself instead of leaking as an orphan.
    match Command::new(&argv[0])
        .args(&argv[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .env("MQO_SUPERVISED", "1")
        .spawn()
    {
        Ok(child) => cell.child = Some(child),
        Err(e) => {
            cell.child = None;
            cell.last_exit = Some(format!("spawn failed: {e}"));
        }
    }
}

/// One deadline-bounded HTTP exchange against a cell; `true` on any HTTP
/// answer (the cell is alive), `false` on connect/read failure or timeout.
fn probe(addr: &str, method: &str, path: &str, timeout: Duration) -> bool {
    let Ok(mut addrs) = std::net::ToSocketAddrs::to_socket_addrs(&addr) else {
        return false;
    };
    let Some(sock) = addrs.next() else {
        return false;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&sock, timeout) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    if stream
        .write_all(&render_request(method, path, addr, b"", true))
        .is_err()
    {
        return false;
    }
    let mut reader = std::io::BufReader::new(stream);
    read_response(&mut reader).is_ok()
}

/// The monitor: detects exits, probes health, executes the kill schedule,
/// respawns with backoff, quarantines crash loops.
fn monitor_loop(shared: &Shared) {
    let schedule = shared.config.kill_schedule;
    let start = Instant::now();
    // Precompute the seeded kill plan, soonest first.
    let mut kills: Vec<(Duration, usize)> = (0..schedule.kills)
        .map(|k| {
            (
                Duration::from_millis(schedule.delay_ms(k)),
                schedule.target_cell(k, shared.cells.len()),
            )
        })
        .collect();
    kills.sort();
    let mut next_kill = 0usize;

    while !shared.stop.load(Ordering::SeqCst) {
        // Deliver due chaos kills through the same SIGKILL path tests use.
        while next_kill < kills.len() && start.elapsed() >= kills[next_kill].0 {
            let target = kills[next_kill].1;
            next_kill += 1;
            let mut cell = lock_recover(&shared.cells[target], &shared.lock_recoveries);
            if let Some(child) = cell.child.as_mut() {
                let _ = child.kill();
                Metrics::inc(&shared.metrics.chaos_cell_kills_injected);
            }
        }

        for (idx, slot) in shared.cells.iter().enumerate() {
            if shared.quarantined[idx].load(Ordering::SeqCst) {
                continue;
            }
            let mut cell = lock_recover(slot, &shared.lock_recoveries);

            // Pending respawn?
            if let Some(due) = cell.respawn_due {
                if Instant::now() >= due {
                    spawn_cell(&mut cell);
                    cell.respawns += 1;
                    Metrics::inc(&shared.metrics.cell_respawns);
                }
                continue;
            }

            // Exit detection.
            let exited = match cell.child.as_mut() {
                Some(child) => match child.try_wait() {
                    Ok(Some(status)) => Some(status.to_string()),
                    Ok(None) => None,
                    Err(e) => Some(format!("wait failed: {e}")),
                },
                // Spawn itself failed: treat as an instant exit.
                None => Some(
                    cell.last_exit
                        .clone()
                        .unwrap_or_else(|| "never spawned".to_string()),
                ),
            };
            if let Some(exit) = exited {
                cell.child = None;
                cell.last_exit = Some(exit);
                let uptime_ms = cell.spawned_at.elapsed().as_millis() as u64;
                let (verdict, run) = shared.policy.verdict(uptime_ms, cell.rapid_crashes);
                cell.rapid_crashes = run;
                match verdict {
                    RespawnVerdict::Respawn { delay_ms } => {
                        cell.respawn_due = Some(Instant::now() + Duration::from_millis(delay_ms));
                    }
                    RespawnVerdict::Quarantine => {
                        shared.quarantined[idx].store(true, Ordering::SeqCst);
                        Metrics::inc(&shared.metrics.crash_loops_quarantined);
                    }
                }
                continue;
            }

            // Liveness probing.
            if shared.config.probe_failure_threshold == 0 {
                continue;
            }
            let interval = Duration::from_millis(shared.config.probe_interval_ms.max(1));
            if cell.last_probe.elapsed() < interval {
                continue;
            }
            cell.last_probe = Instant::now();
            let timeout = Duration::from_millis(shared.config.probe_timeout_ms.max(1));
            let addr = cell.addr.clone();
            // Probe without holding the cell lock: a slow probe must not
            // block kill_cell/snapshots for its full timeout.
            drop(cell);
            let ok = probe(&addr, "GET", "/healthz", timeout);
            let mut cell = lock_recover(slot, &shared.lock_recoveries);
            if ok {
                cell.consecutive_probe_failures = 0;
                cell.healthy_once = true;
            } else {
                cell.consecutive_probe_failures += 1;
                cell.probe_failures += 1;
                Metrics::inc(&shared.metrics.health_probe_failures);
                if cell.consecutive_probe_failures >= shared.config.probe_failure_threshold {
                    // Alive but unresponsive: kill and let the next tick's
                    // exit detection route it through the crash policy.
                    if let Some(child) = cell.child.as_mut() {
                        let _ = child.kill();
                    }
                }
            }
        }
        std::thread::sleep(TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RespawnPolicy {
        RespawnPolicy {
            backoff_initial_ms: 100,
            backoff_max_ms: 1_600,
            crash_loop_threshold: 4,
            crash_loop_window_ms: 10_000,
        }
    }

    #[test]
    fn backoff_doubles_per_rapid_crash_and_caps() {
        let p = policy();
        assert_eq!(p.backoff_ms(1), 100);
        assert_eq!(p.backoff_ms(2), 200);
        assert_eq!(p.backoff_ms(3), 400);
        assert_eq!(p.backoff_ms(5), 1_600, "capped");
        assert_eq!(p.backoff_ms(60), 1_600, "no overflow at large runs");
    }

    #[test]
    fn healthy_uptime_resets_the_rapid_crash_run() {
        let p = policy();
        let (verdict, run) = p.verdict(60_000, 3);
        assert_eq!(run, 1, "a long-lived cell's crash starts a fresh run");
        assert_eq!(verdict, RespawnVerdict::Respawn { delay_ms: 100 });
    }

    #[test]
    fn rapid_crashes_escalate_to_quarantine() {
        let p = policy();
        let mut run = 0;
        let mut delays = Vec::new();
        loop {
            let (verdict, next) = p.verdict(50, run);
            run = next;
            match verdict {
                RespawnVerdict::Respawn { delay_ms } => delays.push(delay_ms),
                RespawnVerdict::Quarantine => break,
            }
        }
        assert_eq!(delays, vec![100, 200, 400], "three backoffs, then gone");
        assert_eq!(run, 4, "quarantined at the threshold");
    }

    #[test]
    fn zero_threshold_never_quarantines() {
        let p = RespawnPolicy {
            crash_loop_threshold: 0,
            ..policy()
        };
        let mut run = 0;
        for _ in 0..50 {
            let (verdict, next) = p.verdict(0, run);
            run = next;
            assert!(matches!(verdict, RespawnVerdict::Respawn { .. }));
        }
        assert_eq!(run, 50);
    }

    #[test]
    fn config_validation_catches_mismatches() {
        let ok = SupervisorConfig::new(
            vec!["mqo_serve".to_string(), ADDR_PLACEHOLDER.to_string()],
            vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
        );
        assert!(ok.validate().is_ok());
        assert_eq!(ok.commands.len(), 2, "template is replicated per cell");

        let mut mismatched = ok.clone();
        mismatched.commands.pop();
        assert!(mismatched.validate().is_err());

        let mut empty_template = ok.clone();
        empty_template.commands[1].clear();
        assert!(empty_template.validate().is_err());

        let mut no_cells = ok;
        no_cells.cells.clear();
        no_cells.commands.clear();
        assert!(no_cells.validate().is_err());
    }

    #[test]
    fn spawn_failure_is_recorded_as_an_instant_exit() {
        let now = Instant::now();
        let mut cell = CellProcess {
            addr: "127.0.0.1:1".to_string(),
            command: vec!["/nonexistent/mqo-test-binary".to_string()],
            child: None,
            spawned_at: now,
            respawn_due: None,
            rapid_crashes: 0,
            consecutive_probe_failures: 0,
            last_probe: now,
            healthy_once: false,
            respawns: 0,
            probe_failures: 0,
            last_exit: None,
        };
        spawn_cell(&mut cell);
        assert!(cell.child.is_none());
        assert!(
            cell.last_exit
                .as_deref()
                .is_some_and(|e| e.contains("spawn failed")),
            "{:?}",
            cell.last_exit
        );
    }
}
