//! `mqo_router` — structure-sharded front for a fleet of `mqo_serve` cells.
//!
//! ```text
//! mqo_router --cells 127.0.0.1:7700,127.0.0.1:7701 [--addr 127.0.0.1:7600]
//!            [--forwarders N] [--epsilon F] [--io-timeout-ms N]
//!            [--breaker-threshold N] [--breaker-open-ms N]
//!            [--warm-exemplars N] [--max-connections N]
//!            [--request-deadline-ms N] [--accept-shards N] [--max-pipeline N]
//! ```
//!
//! Shards `POST /solve` requests across the cells by the instance's QUBO
//! structure hash so each cell's embedding cache serves a consistent slice
//! of the workload; unreachable cells are skipped via per-cell circuit
//! breakers and recovered cells get their caches warmed from recent
//! exemplar requests. Prints `listening on <addr>` (scripts parse that
//! line), serves until `POST /shutdown`, then prints `drained and stopped`.

use mqo_service::shard::{MqoRouter, MqoRouterConfig};

struct Options {
    config: MqoRouterConfig,
}

fn parse_options() -> Result<Options, String> {
    let mut cells: Vec<String> = Vec::new();
    let mut config = MqoRouterConfig::new(Vec::new());
    config.addr = "127.0.0.1:7600".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--cells" => {
                cells = value("--cells")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--forwarders" => config.forwarders = parse(&value("--forwarders")?, "--forwarders")?,
            "--epsilon" => config.epsilon = parse(&value("--epsilon")?, "--epsilon")?,
            "--io-timeout-ms" => {
                config.io_timeout_ms = parse(&value("--io-timeout-ms")?, "--io-timeout-ms")?
            }
            "--breaker-threshold" => {
                config.breaker.failure_threshold =
                    parse(&value("--breaker-threshold")?, "--breaker-threshold")?
            }
            "--breaker-open-ms" => {
                config.breaker.open_ms = parse(&value("--breaker-open-ms")?, "--breaker-open-ms")?
            }
            "--warm-exemplars" => {
                config.warm_exemplars = parse(&value("--warm-exemplars")?, "--warm-exemplars")?
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections")?, "--max-connections")?
            }
            "--request-deadline-ms" => {
                config.request_deadline_ms =
                    parse(&value("--request-deadline-ms")?, "--request-deadline-ms")?
            }
            "--accept-shards" => {
                config.accept_shards = parse(&value("--accept-shards")?, "--accept-shards")?
            }
            "--max-pipeline" => {
                config.max_pipeline = parse(&value("--max-pipeline")?, "--max-pipeline")?
            }
            "--help" | "-h" => {
                println!(
                    "mqo_router: structure-sharded front for mqo_serve cells\n\
                     --cells A,B,...     upstream cell addresses (required)\n\
                     --addr A            bind address (default 127.0.0.1:7600)\n\
                     --forwarders N      forwarder threads (4)\n\
                     --epsilon F         logical-QUBO epsilon for the shard key (0.25)\n\
                     --io-timeout-ms N   upstream connect/read/write timeout (10000)\n\
                     --breaker-threshold N  consecutive failures that open a cell breaker (5)\n\
                     --breaker-open-ms N    cell breaker cooling period (1000)\n\
                     --warm-exemplars N  exemplar requests replayed on cell recovery, 0 = off (32)\n\
                     --max-connections N   client-side connection cap (256)\n\
                     --request-deadline-ms N  client-side read deadline (10000)\n\
                     --accept-shards N   event-loop accept shards (2)\n\
                     --max-pipeline N    pipelined requests per connection cap (32)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cells.is_empty() {
        return Err("--cells is required (comma-separated mqo_serve addresses)".to_string());
    }
    config.cells = cells;
    Ok(Options { config })
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mqo_router: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let router = match MqoRouter::start(opts.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mqo_router: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", router.local_addr());
    router.wait();
    println!("drained and stopped");
}
