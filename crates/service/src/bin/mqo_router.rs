//! `mqo_router` — structure-sharded front for a fleet of `mqo_serve` cells.
//!
//! ```text
//! mqo_router --cells 127.0.0.1:7700,127.0.0.1:7701 [--addr 127.0.0.1:7600]
//!            [--forwarders N] [--epsilon F] [--io-timeout-ms N]
//!            [--breaker-threshold N] [--breaker-open-ms N]
//!            [--warm-exemplars N] [--response-cache N] [--max-connections N]
//!            [--request-deadline-ms N] [--accept-shards N] [--max-pipeline N]
//!            [--failover-budget-ms N] [--journal-depth N]
//!            [--failover-rounds N] [--round-backoff-ms N]
//!            [--supervise 'CMD --addr {addr}'] [--supervise-cell I:CMD]
//!            [--probe-interval-ms N] [--probe-timeout-ms N] [--probe-failures N]
//!            [--backoff-initial-ms N] [--backoff-max-ms N]
//!            [--crash-loop-threshold N] [--crash-loop-window-ms N]
//!            [--startup-timeout-ms N]
//!            [--chaos-kill-seed N] [--chaos-kills N]
//!            [--chaos-kill-min-ms N] [--chaos-kill-max-ms N]
//! ```
//!
//! Shards `POST /solve` requests across the cells by the instance's QUBO
//! structure hash so each cell's embedding cache serves a consistent slice
//! of the workload; unreachable cells are skipped via per-cell circuit
//! breakers, failed forwards replay transparently on healthy cells inside
//! the client's deadline budget, and recovered cells get their caches
//! warmed from recent exemplar requests.
//!
//! With `--supervise`, the router *owns* its cells: the command template
//! (whitespace-split; `{addr}` substitutes the cell address) is spawned
//! once per `--cells` entry, dead cells respawn with exponential backoff,
//! and crash-looping cells are quarantined with their shard range remapped
//! onto the survivors. `--supervise-cell I:CMD` overrides the template for
//! cell I (useful for canaries). The `--chaos-kill-*` flags arm a seeded
//! kill schedule that SIGKILLs supervised cells at deterministic times —
//! the fleet-chaos proof harness.
//!
//! Prints `listening on <addr>` (scripts parse that line), serves until
//! `POST /shutdown`, then prints `drained and stopped` after the router
//! *and* any supervised cells have drained.

use mqo_service::shard::{MqoRouter, MqoRouterConfig};
use mqo_service::supervisor::SupervisorConfig;

struct Options {
    config: MqoRouterConfig,
}

fn parse_options() -> Result<Options, String> {
    let mut cells: Vec<String> = Vec::new();
    let mut config = MqoRouterConfig::new(Vec::new());
    config.addr = "127.0.0.1:7600".to_string();
    // Supervision knobs are collected first and assembled once the cell
    // list is known (flag order must not matter).
    let mut supervise_template: Option<Vec<String>> = None;
    let mut cell_overrides: Vec<(usize, Vec<String>)> = Vec::new();
    let mut sup_defaults = SupervisorConfig::new(Vec::new(), Vec::new());
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--cells" => {
                cells = value("--cells")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--forwarders" => config.forwarders = parse(&value("--forwarders")?, "--forwarders")?,
            "--epsilon" => config.epsilon = parse(&value("--epsilon")?, "--epsilon")?,
            "--io-timeout-ms" => {
                config.io_timeout_ms = parse(&value("--io-timeout-ms")?, "--io-timeout-ms")?
            }
            "--breaker-threshold" => {
                config.breaker.failure_threshold =
                    parse(&value("--breaker-threshold")?, "--breaker-threshold")?
            }
            "--breaker-open-ms" => {
                config.breaker.open_ms = parse(&value("--breaker-open-ms")?, "--breaker-open-ms")?
            }
            "--warm-exemplars" => {
                config.warm_exemplars = parse(&value("--warm-exemplars")?, "--warm-exemplars")?
            }
            "--response-cache" => {
                config.response_cache = parse(&value("--response-cache")?, "--response-cache")?
            }
            "--failover-budget-ms" => {
                config.failover.budget_ms =
                    parse(&value("--failover-budget-ms")?, "--failover-budget-ms")?
            }
            "--journal-depth" => {
                config.failover.journal_depth =
                    parse(&value("--journal-depth")?, "--journal-depth")?
            }
            "--failover-rounds" => {
                config.failover.rounds = parse(&value("--failover-rounds")?, "--failover-rounds")?
            }
            "--round-backoff-ms" => {
                config.failover.round_backoff_ms =
                    parse(&value("--round-backoff-ms")?, "--round-backoff-ms")?
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections")?, "--max-connections")?
            }
            "--request-deadline-ms" => {
                config.request_deadline_ms =
                    parse(&value("--request-deadline-ms")?, "--request-deadline-ms")?
            }
            "--accept-shards" => {
                config.accept_shards = parse(&value("--accept-shards")?, "--accept-shards")?
            }
            "--max-pipeline" => {
                config.max_pipeline = parse(&value("--max-pipeline")?, "--max-pipeline")?
            }
            "--supervise" => {
                supervise_template = Some(split_command(&value("--supervise")?, "--supervise")?)
            }
            "--supervise-cell" => {
                let spec = value("--supervise-cell")?;
                let (index, command) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--supervise-cell wants INDEX:COMMAND, got {spec:?}"))?;
                let index: usize = parse(index, "--supervise-cell index")?;
                cell_overrides.push((index, split_command(command, "--supervise-cell")?));
            }
            "--probe-interval-ms" => {
                sup_defaults.probe_interval_ms =
                    parse(&value("--probe-interval-ms")?, "--probe-interval-ms")?
            }
            "--probe-timeout-ms" => {
                sup_defaults.probe_timeout_ms =
                    parse(&value("--probe-timeout-ms")?, "--probe-timeout-ms")?
            }
            "--probe-failures" => {
                sup_defaults.probe_failure_threshold =
                    parse(&value("--probe-failures")?, "--probe-failures")?
            }
            "--backoff-initial-ms" => {
                sup_defaults.backoff_initial_ms =
                    parse(&value("--backoff-initial-ms")?, "--backoff-initial-ms")?
            }
            "--backoff-max-ms" => {
                sup_defaults.backoff_max_ms =
                    parse(&value("--backoff-max-ms")?, "--backoff-max-ms")?
            }
            "--crash-loop-threshold" => {
                sup_defaults.crash_loop_threshold =
                    parse(&value("--crash-loop-threshold")?, "--crash-loop-threshold")?
            }
            "--crash-loop-window-ms" => {
                sup_defaults.crash_loop_window_ms =
                    parse(&value("--crash-loop-window-ms")?, "--crash-loop-window-ms")?
            }
            "--startup-timeout-ms" => {
                sup_defaults.startup_timeout_ms =
                    parse(&value("--startup-timeout-ms")?, "--startup-timeout-ms")?
            }
            "--chaos-kill-seed" => {
                sup_defaults.kill_schedule.seed =
                    parse(&value("--chaos-kill-seed")?, "--chaos-kill-seed")?
            }
            "--chaos-kills" => {
                sup_defaults.kill_schedule.kills = parse(&value("--chaos-kills")?, "--chaos-kills")?
            }
            "--chaos-kill-min-ms" => {
                sup_defaults.kill_schedule.min_delay_ms =
                    parse(&value("--chaos-kill-min-ms")?, "--chaos-kill-min-ms")?
            }
            "--chaos-kill-max-ms" => {
                sup_defaults.kill_schedule.max_delay_ms =
                    parse(&value("--chaos-kill-max-ms")?, "--chaos-kill-max-ms")?
            }
            "--help" | "-h" => {
                println!(
                    "mqo_router: structure-sharded front for mqo_serve cells\n\
                     --cells A,B,...     upstream cell addresses (required)\n\
                     --addr A            bind address (default 127.0.0.1:7600)\n\
                     --forwarders N      forwarder threads (4)\n\
                     --epsilon F         logical-QUBO epsilon for the shard key (0.25)\n\
                     --io-timeout-ms N   upstream connect/read/write timeout (10000)\n\
                     --breaker-threshold N  consecutive failures that open a cell breaker (5)\n\
                     --breaker-open-ms N    cell breaker cooling period (1000)\n\
                     --warm-exemplars N  exemplar requests replayed on cell recovery, 0 = off (32)\n\
                     --response-cache N  idempotent-repeat response cache entries, 0 = off (128)\n\
                     --failover-budget-ms N  replay window for deadline-less requests (2000)\n\
                     --journal-depth N   outstanding requests per shard, 0 = unbounded (64)\n\
                     --failover-rounds N fleet passes before giving up (4)\n\
                     --round-backoff-ms N  pause between fleet passes (25)\n\
                     --max-connections N   client-side connection cap (256)\n\
                     --request-deadline-ms N  client-side read deadline (10000)\n\
                     --accept-shards N   event-loop accept shards (2)\n\
                     --max-pipeline N    pipelined requests per connection cap (32)\n\
                     --supervise CMD     spawn each cell from this template ({{addr}} substituted)\n\
                     --supervise-cell I:CMD  override the template for cell I\n\
                     --probe-interval-ms N  /healthz probe cadence (200)\n\
                     --probe-timeout-ms N   per-probe deadline (500)\n\
                     --probe-failures N     consecutive probe failures before restart, 0 = off (3)\n\
                     --backoff-initial-ms N respawn backoff seed (100)\n\
                     --backoff-max-ms N     respawn backoff cap (5000)\n\
                     --crash-loop-threshold N  rapid crashes before quarantine, 0 = never (5)\n\
                     --crash-loop-window-ms N  uptime below this counts as a rapid crash (10000)\n\
                     --startup-timeout-ms N  fleet readiness deadline (30000)\n\
                     --chaos-kill-seed N / --chaos-kills N  seeded SIGKILL schedule (off)\n\
                     --chaos-kill-min-ms N / --chaos-kill-max-ms N  kill delay bounds (100/2000)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cells.is_empty() {
        return Err("--cells is required (comma-separated mqo_serve addresses)".to_string());
    }
    if let Some(template) = supervise_template {
        let mut sup = SupervisorConfig::new(template, cells.clone());
        sup.probe_interval_ms = sup_defaults.probe_interval_ms;
        sup.probe_timeout_ms = sup_defaults.probe_timeout_ms;
        sup.probe_failure_threshold = sup_defaults.probe_failure_threshold;
        sup.backoff_initial_ms = sup_defaults.backoff_initial_ms;
        sup.backoff_max_ms = sup_defaults.backoff_max_ms;
        sup.crash_loop_threshold = sup_defaults.crash_loop_threshold;
        sup.crash_loop_window_ms = sup_defaults.crash_loop_window_ms;
        sup.startup_timeout_ms = sup_defaults.startup_timeout_ms;
        sup.kill_schedule = sup_defaults.kill_schedule;
        for (index, command) in cell_overrides {
            if index >= sup.commands.len() {
                return Err(format!(
                    "--supervise-cell index {index} out of range ({} cells)",
                    sup.commands.len()
                ));
            }
            sup.commands[index] = command;
        }
        config.supervisor = Some(sup);
    } else if !cell_overrides.is_empty() {
        return Err("--supervise-cell requires --supervise".to_string());
    }
    config.cells = cells;
    Ok(Options { config })
}

/// Splits a command template on whitespace; `{addr}` placeholders survive
/// as their own tokens and are substituted per cell at spawn time.
fn split_command(spec: &str, flag: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<String> = spec.split_whitespace().map(|s| s.to_string()).collect();
    if tokens.is_empty() {
        return Err(format!("{flag}: empty command"));
    }
    Ok(tokens)
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mqo_router: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let supervised = opts.config.supervisor.is_some();
    let router = match MqoRouter::start(opts.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mqo_router: cannot start: {e}");
            std::process::exit(1);
        }
    };
    if supervised {
        for cell in router
            .supervisor()
            .map(|s| s.snapshots())
            .unwrap_or_default()
        {
            println!("cell {}: supervised (alive: {})", cell.addr, cell.alive);
        }
    }
    println!("listening on {}", router.local_addr());
    router.wait();
    for line in router.supervisor_report() {
        println!("{line}");
    }
    println!("drained and stopped");
}
