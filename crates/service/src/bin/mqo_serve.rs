//! `mqo_serve` — the batching MQO solve server.
//!
//! ```text
//! mqo_serve [--addr 127.0.0.1:7700] [--small] [--reads N] [--gauges N]
//!           [--threads N] [--queue-depth N] [--workers N] [--batch N]
//!           [--cache-capacity N] [--fault-rate F] [--derating F]
//!           [--deadline-ms N] [--milp-max-queries N] [--budget-ms N]
//!           [--max-connections N] [--request-deadline-ms N]
//!           [--io-timeout-ms N] [--accept-shards N] [--max-pipeline N]
//!           [--breaker-threshold N] [--breaker-open-ms N]
//!           [--chaos-seed N] [--chaos-panic-rate F] [--chaos-kill-rate F]
//!           [--chaos-backend-failure-rate F] [--chaos-corruption-rate F]
//!           [--no-integrity-repair] [--no-verify-gate]
//!           [--packing] [--max-tenants N]
//! ```
//!
//! Binds, prints `listening on <addr>` (scripts parse that line), then
//! serves until `POST /shutdown` arrives; shutdown drains the queue before
//! the process exits. The `--chaos-*` flags inject deterministic faults
//! (worker panics/deaths, backend failures) for resilience testing; all
//! rates default to zero, which is bit-identical to a chaos-free build.

use mqo_chimera::graph::ChimeraGraph;
use mqo_service::chaos::ChaosConfig;
use mqo_service::engine::EngineConfig;
use mqo_service::queue::QueueConfig;
use mqo_service::server::{Server, ServerConfig};
use std::time::Duration;

struct Options {
    addr: String,
    small: bool,
    reads: usize,
    gauges: usize,
    threads: usize,
    queue_depth: usize,
    workers: usize,
    batch: usize,
    cache_capacity: usize,
    fault_rate: f64,
    derating: f64,
    deadline_ms: u64,
    milp_max_queries: usize,
    budget_ms: u64,
    max_connections: usize,
    request_deadline_ms: u64,
    io_timeout_ms: u64,
    accept_shards: usize,
    max_pipeline: usize,
    breaker_threshold: u32,
    breaker_open_ms: u64,
    chaos: ChaosConfig,
    integrity_repair: bool,
    verify_gate: bool,
    packing: bool,
    max_tenants: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7700".to_string(),
            small: false,
            reads: 100,
            gauges: 10,
            threads: 0,
            queue_depth: 64,
            workers: 2,
            batch: 8,
            cache_capacity: 128,
            fault_rate: 0.0,
            derating: 0.0,
            deadline_ms: 0,
            milp_max_queries: 14,
            budget_ms: 250,
            max_connections: 256,
            request_deadline_ms: 10_000,
            io_timeout_ms: 10_000,
            accept_shards: 2,
            max_pipeline: 32,
            breaker_threshold: 5,
            breaker_open_ms: 1_000,
            chaos: ChaosConfig::NONE,
            integrity_repair: true,
            verify_gate: true,
            packing: false,
            max_tenants: 16,
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--small" => opts.small = true,
            "--reads" => opts.reads = parse(&value("--reads")?, "--reads")?,
            "--gauges" => opts.gauges = parse(&value("--gauges")?, "--gauges")?,
            "--threads" => opts.threads = parse(&value("--threads")?, "--threads")?,
            "--queue-depth" => opts.queue_depth = parse(&value("--queue-depth")?, "--queue-depth")?,
            "--workers" => opts.workers = parse(&value("--workers")?, "--workers")?,
            "--batch" => opts.batch = parse(&value("--batch")?, "--batch")?,
            "--cache-capacity" => {
                opts.cache_capacity = parse(&value("--cache-capacity")?, "--cache-capacity")?
            }
            "--fault-rate" => opts.fault_rate = parse(&value("--fault-rate")?, "--fault-rate")?,
            "--derating" => opts.derating = parse(&value("--derating")?, "--derating")?,
            "--deadline-ms" => opts.deadline_ms = parse(&value("--deadline-ms")?, "--deadline-ms")?,
            "--milp-max-queries" => {
                opts.milp_max_queries = parse(&value("--milp-max-queries")?, "--milp-max-queries")?
            }
            "--budget-ms" => opts.budget_ms = parse(&value("--budget-ms")?, "--budget-ms")?,
            "--max-connections" => {
                opts.max_connections = parse(&value("--max-connections")?, "--max-connections")?
            }
            "--request-deadline-ms" => {
                opts.request_deadline_ms =
                    parse(&value("--request-deadline-ms")?, "--request-deadline-ms")?
            }
            "--io-timeout-ms" => {
                opts.io_timeout_ms = parse(&value("--io-timeout-ms")?, "--io-timeout-ms")?
            }
            "--accept-shards" => {
                opts.accept_shards = parse(&value("--accept-shards")?, "--accept-shards")?
            }
            "--max-pipeline" => {
                opts.max_pipeline = parse(&value("--max-pipeline")?, "--max-pipeline")?
            }
            "--breaker-threshold" => {
                opts.breaker_threshold =
                    parse(&value("--breaker-threshold")?, "--breaker-threshold")?
            }
            "--breaker-open-ms" => {
                opts.breaker_open_ms = parse(&value("--breaker-open-ms")?, "--breaker-open-ms")?
            }
            "--chaos-seed" => opts.chaos.seed = parse(&value("--chaos-seed")?, "--chaos-seed")?,
            "--chaos-panic-rate" => {
                opts.chaos.worker_panic_rate =
                    parse(&value("--chaos-panic-rate")?, "--chaos-panic-rate")?
            }
            "--chaos-kill-rate" => {
                opts.chaos.worker_kill_rate =
                    parse(&value("--chaos-kill-rate")?, "--chaos-kill-rate")?
            }
            "--chaos-backend-failure-rate" => {
                opts.chaos.backend_failure_rate = parse(
                    &value("--chaos-backend-failure-rate")?,
                    "--chaos-backend-failure-rate",
                )?
            }
            "--chaos-corruption-rate" => {
                opts.chaos.sample_corruption_rate = parse(
                    &value("--chaos-corruption-rate")?,
                    "--chaos-corruption-rate",
                )?
            }
            "--packing" => opts.packing = true,
            "--max-tenants" => opts.max_tenants = parse(&value("--max-tenants")?, "--max-tenants")?,
            "--no-integrity-repair" => opts.integrity_repair = false,
            "--no-verify-gate" => opts.verify_gate = false,
            "--help" | "-h" => {
                println!(
                    "mqo_serve: batching MQO solve server\n\
                     --addr A            bind address (default 127.0.0.1:7700)\n\
                     --small             4-cell Chimera graph instead of the 12x12 D-Wave 2X\n\
                     --reads N           default annealing reads per request (100)\n\
                     --gauges N          default gauge batches per request (10)\n\
                     --threads N         device read-execution threads, 0 = all cores (0)\n\
                     --queue-depth N     admission queue bound (64)\n\
                     --workers N         solve workers (2)\n\
                     --batch N           max requests per worker wake-up (8)\n\
                     --cache-capacity N  embedding cache entries, 0 disables (128)\n\
                     --fault-rate F      per-gauge qubit dropout probability (0)\n\
                     --derating F        capacity fraction withheld from routing (0)\n\
                     --deadline-ms N     default queue deadline, 0 = none (0)\n\
                     --milp-max-queries N  MILP routing bound (14)\n\
                     --budget-ms N       classical backend wall budget (250)\n\
                     --max-connections N   concurrent-connection cap (256)\n\
                     --request-deadline-ms N  per-request read deadline, 0 = none (10000)\n\
                     --io-timeout-ms N   keep-alive idle / write-stall timeout (10000)\n\
                     --accept-shards N   event-loop accept shards (2)\n\
                     --max-pipeline N    pipelined requests per connection cap (32)\n\
                     --breaker-threshold N  consecutive failures that open a breaker, 0 = off (5)\n\
                     --breaker-open-ms N    breaker cooling period (1000)\n\
                     --chaos-seed N      seed of the chaos streams (0)\n\
                     --chaos-panic-rate F   per-request worker panic probability (0)\n\
                     --chaos-kill-rate F    caught-panic worker death probability (0)\n\
                     --chaos-backend-failure-rate F  per-attempt backend failure probability (0)\n\
                     --chaos-corruption-rate F  per-request answer corruption probability (0)\n\
                     --packing           pack small requests onto disjoint chip regions per cycle\n\
                     --max-tenants N     tenants per packed cycle cap (16)\n\
                     --no-integrity-repair  reject gate failures with a typed 500 instead of repairing\n\
                     --no-verify-gate    disable answer re-validation (bench escape hatch)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mqo_serve: {e} (try --help)");
            std::process::exit(2);
        }
    };

    let graph = if opts.small {
        ChimeraGraph::new(2, 2)
    } else {
        ChimeraGraph::dwave_2x()
    };
    let mut engine = EngineConfig::new(graph);
    engine.device.num_reads = opts.reads.max(1);
    engine.device.num_gauges = opts.gauges.clamp(1, engine.device.num_reads);
    engine.device.threads = opts.threads;
    engine.device.faults.qubit_dropout_rate = opts.fault_rate;
    engine.cache_capacity = opts.cache_capacity;
    engine.router.capacity_derating = if opts.fault_rate > 0.0 && opts.derating == 0.0 {
        // A faulty device should not be routed instances that only fit a
        // pristine chip; derate capacity by the dropout rate by default.
        opts.fault_rate
    } else {
        opts.derating
    };
    engine.router.milp_max_queries = opts.milp_max_queries;
    engine.classical_budget = Duration::from_millis(opts.budget_ms.max(1));
    if let Err(e) = opts.chaos.validate() {
        eprintln!("mqo_serve: {e}");
        std::process::exit(2);
    }
    engine.chaos = opts.chaos;
    engine.integrity_repair = opts.integrity_repair;
    engine.verify_gate = opts.verify_gate;
    engine.breaker.failure_threshold = opts.breaker_threshold;
    engine.breaker.open_ms = opts.breaker_open_ms;
    engine.packing = opts.packing;
    engine.packing_max_tenants = opts.max_tenants.max(2);

    let mut config = ServerConfig::new(engine);
    config.addr = opts.addr;
    config.queue = QueueConfig {
        depth: opts.queue_depth.max(1),
        workers: opts.workers.max(1),
        batch_size: opts.batch.max(1),
        default_deadline_ms: opts.deadline_ms,
    };
    config.max_connections = opts.max_connections.max(1);
    config.request_deadline_ms = opts.request_deadline_ms;
    config.io_timeout_ms = opts.io_timeout_ms.max(1);
    config.accept_shards = opts.accept_shards.max(1);
    config.max_pipeline = opts.max_pipeline.max(1);

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mqo_serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    let server = std::sync::Arc::new(server);
    spawn_supervision_watchdog(&server);
    server.wait();
    println!("drained and stopped");
}

/// When spawned by a fleet supervisor (`MQO_SUPERVISED` set, stdin is a
/// pipe the supervisor holds open), watch stdin for EOF: the pipe closes
/// the instant the supervising process dies — even on SIGKILL, where its
/// own cleanup never runs — so the cell drains itself instead of living
/// on as an orphan. Standalone runs (no env var) are unaffected.
fn spawn_supervision_watchdog(server: &std::sync::Arc<Server>) {
    if std::env::var_os("MQO_SUPERVISED").is_none() {
        return;
    }
    let server = std::sync::Arc::clone(server);
    std::thread::spawn(move || {
        use std::io::Read;
        let mut sink = [0u8; 64];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        eprintln!("mqo_serve: supervisor vanished (stdin closed); draining");
        server.shutdown();
        // A drain with no supervisor left must still terminate: give it a
        // bounded grace, then exit hard. A clean drain beats this to it.
        std::thread::sleep(Duration::from_secs(2));
        std::process::exit(3);
    });
}
