//! Multi-backend routing: the paper's representability split as a service
//! policy.
//!
//! Section 6 of the paper derives which MQO problem dimensions fit the
//! Chimera qubit matrix; Section 7 runs exactly those instances on the
//! annealer and leaves the rest to classical algorithms. The router encodes
//! that decision per request: instances inside the (possibly
//! fault-degraded) capacity bound go to the annealer, instances beyond it
//! go to MILP branch-and-bound when they are small enough to finish within
//! a service budget, and to iterated hill climbing otherwise.

use crate::api::Backend;
use mqo_chimera::capacity;
use mqo_chimera::graph::ChimeraGraph;
use mqo_core::problem::MqoProblem;
use serde::{Deserialize, Serialize};

/// Routing policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RouterConfig {
    /// Fraction of working qubits treated as unusable when judging
    /// capacity. Mirrors the fault-injection dropout rate: a device running
    /// at 5 % fault rate should not be handed instances that only fit a
    /// pristine chip (they would bounce through re-embedding rounds).
    pub capacity_derating: f64,
    /// Queries at or below this bound route to MILP when the annealer
    /// cannot host the instance; larger instances go to hill climbing
    /// (branch-and-bound beyond ~tens of queries blows the latency budget).
    pub milp_max_queries: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            capacity_derating: 0.0,
            milp_max_queries: 14,
        }
    }
}

/// A routing decision with its justification (returned in the response and
/// useful in logs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteDecision {
    /// Where the request goes.
    pub backend: Backend,
    /// Human-readable reason.
    pub reason: String,
}

/// Decides the backend for one instance on one device graph.
pub fn route(problem: &MqoProblem, graph: &ChimeraGraph, cfg: &RouterConfig) -> RouteDecision {
    let derating = cfg.capacity_derating.clamp(0.0, 1.0);
    let effective_qubits =
        ((graph.num_working_qubits() as f64) * (1.0 - derating)).floor() as usize;

    // A TRIAD clique hosts up to 4·min(rows, cols) chains regardless of the
    // savings structure — the unconditional representability bound.
    let clique_cap = 4 * graph.rows().min(graph.cols());
    let clique_fits = problem.num_plans() <= clique_cap && derating == 0.0;

    // The clustered capacity bound of Section 6: uniform queries of the
    // instance's worst plan count against the derated qubit budget.
    let max_plans = problem
        .queries()
        .map(|q| problem.num_plans_of(q))
        .max()
        .unwrap_or(0);
    let clustered_cap = capacity::max_queries(effective_qubits, max_plans);
    let clustered_fits = clustered_cap >= problem.num_queries();

    if clique_fits || clustered_fits {
        let reason = if clique_fits {
            format!(
                "{} plans fit a TRIAD clique (capacity {clique_cap})",
                problem.num_plans()
            )
        } else {
            format!(
                "{} queries x {max_plans} plans within clustered capacity {clustered_cap} \
                 ({effective_qubits} effective qubits)",
                problem.num_queries()
            )
        };
        return RouteDecision {
            backend: Backend::Annealer,
            reason,
        };
    }

    if problem.num_queries() <= cfg.milp_max_queries {
        RouteDecision {
            backend: Backend::Milp,
            reason: format!(
                "over annealer capacity (clique {clique_cap}, clustered {clustered_cap}); \
                 {} queries within MILP bound {}",
                problem.num_queries(),
                cfg.milp_max_queries
            ),
        }
    } else {
        RouteDecision {
            backend: Backend::HillClimbing,
            reason: format!(
                "over annealer capacity and MILP bound ({} queries > {})",
                problem.num_queries(),
                cfg.milp_max_queries
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `queries` uniform queries with `plans` plans each, chained savings.
    fn uniform_problem(queries: usize, plans: usize) -> MqoProblem {
        let mut b = MqoProblem::builder();
        let mut prev = None;
        for _ in 0..queries {
            let q = b.add_query(&vec![1.0; plans]);
            let first = b.plans_of(q)[0];
            if let Some(p) = prev {
                b.add_saving(p, first, 0.5).unwrap();
            }
            prev = Some(first);
        }
        b.build().unwrap()
    }

    #[test]
    fn small_instances_route_to_the_annealer() {
        let g = ChimeraGraph::new(2, 2);
        let d = route(&uniform_problem(3, 2), &g, &RouterConfig::default());
        assert_eq!(d.backend, Backend::Annealer);
        assert!(d.reason.contains("TRIAD"), "{}", d.reason);
    }

    #[test]
    fn clustered_capacity_admits_beyond_the_clique_bound() {
        // 12×12 machine: clique caps at 48 plans, but 100 two-plan queries
        // (200 plans) fit the clustered pattern (576 queries).
        let g = ChimeraGraph::dwave_2x();
        let d = route(&uniform_problem(100, 2), &g, &RouterConfig::default());
        assert_eq!(d.backend, Backend::Annealer);
        assert!(d.reason.contains("clustered"), "{}", d.reason);
    }

    #[test]
    fn over_capacity_instances_split_between_milp_and_climbing() {
        let g = ChimeraGraph::new(1, 1); // 8 qubits: 4 two-plan queries max
        let cfg = RouterConfig::default();
        let d = route(&uniform_problem(10, 2), &g, &cfg);
        assert_eq!(d.backend, Backend::Milp);
        let d = route(&uniform_problem(cfg.milp_max_queries + 1, 2), &g, &cfg);
        assert_eq!(d.backend, Backend::HillClimbing);
    }

    #[test]
    fn derating_shrinks_the_capacity_bound() {
        let g = ChimeraGraph::dwave_2x(); // 576 two-plan queries intact
        let cfg = RouterConfig {
            capacity_derating: 0.9,
            ..RouterConfig::default()
        };
        // 100 queries fit the intact machine but not 10% of it.
        let d = route(&uniform_problem(100, 2), &g, &cfg);
        assert_ne!(d.backend, Backend::Annealer);
        // Tiny instances still fit even a heavily derated machine.
        let d = route(&uniform_problem(4, 2), &g, &cfg);
        assert_eq!(d.backend, Backend::Annealer);
    }
}
