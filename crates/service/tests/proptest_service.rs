//! Property-based tests of the service engine: the embedding cache must be
//! invisible in the results. A warm (cache-hit) solve returns bit-identical
//! samples to a cold solve, and neither depends on the device thread count
//! (the PR-1 per-(gauge, read) seed derivation makes reads order-free).

use mqo_chimera::graph::ChimeraGraph;
use mqo_core::problem::MqoProblem;
use mqo_service::api::{Backend, SolveRequest};
use mqo_service::engine::{EngineConfig, SolveEngine};
use mqo_service::metrics::Metrics;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Builds a random MQO instance small enough for the 2×2 test graph:
/// 2–3 queries with 1–2 plans each plus random inter-query savings, all
/// derived deterministically from `gen_seed`.
fn random_problem(gen_seed: u64) -> MqoProblem {
    let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
    let mut b = MqoProblem::builder();
    let num_queries = rng.gen_range(2..=3);
    let queries: Vec<_> = (0..num_queries)
        .map(|_| {
            let num_plans = rng.gen_range(1..=2);
            let costs: Vec<f64> = (0..num_plans)
                .map(|_| f64::from(rng.gen_range(1..=8)))
                .collect();
            b.add_query(&costs)
        })
        .collect();
    for i in 0..queries.len() {
        for j in (i + 1)..queries.len() {
            if rng.gen_bool(0.7) {
                let pi = b.plans_of(queries[i]);
                let pj = b.plans_of(queries[j]);
                let a = pi[rng.gen_range(0..pi.len())];
                let c = pj[rng.gen_range(0..pj.len())];
                let saving = f64::from(rng.gen_range(1..=5));
                b.add_saving(a, c, saving).unwrap();
            }
        }
    }
    b.build().unwrap()
}

fn engine(threads: usize) -> SolveEngine {
    let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
    cfg.device.num_reads = 20;
    cfg.device.num_gauges = 4;
    cfg.device.threads = threads;
    SolveEngine::new(cfg, Arc::new(Metrics::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache hit is bit-identical to a cold solve at any thread count:
    /// same selection, cost, and read statistics — and independent engines
    /// running with different thread counts agree with both.
    #[test]
    fn cache_hit_matches_cold_solve_at_any_thread_count(
        gen_seed in 0u64..1_000,
        solve_seed in 0u64..1_000,
        threads_a in 1usize..=4,
        threads_b in 1usize..=4,
    ) {
        let problem = random_problem(gen_seed);
        let mut req = SolveRequest::new(problem, solve_seed);
        // Pin the annealer so every case exercises the embedding cache.
        req.backend = Some(Backend::Annealer);

        let warm_engine = engine(threads_a);
        let cold = warm_engine.solve(&req).unwrap();
        let warm = warm_engine.solve(&req).unwrap();
        prop_assert!(!cold.cache_hit);
        prop_assert!(warm.cache_hit, "second identical structure must hit");
        prop_assert_eq!(&cold.selection, &warm.selection);
        prop_assert_eq!(cold.cost, warm.cost);
        prop_assert_eq!(cold.reads, warm.reads);
        prop_assert_eq!(cold.qubits_used, warm.qubits_used);

        // A fresh engine with a different thread count reproduces the same
        // result, cold: caching and parallelism are both invisible.
        let other = engine(threads_b).solve(&req).unwrap();
        prop_assert!(!other.cache_hit);
        prop_assert_eq!(&other.selection, &cold.selection);
        prop_assert_eq!(other.cost, cold.cost);
        prop_assert_eq!(other.reads, cold.reads);
    }

    /// Distinct savings *weights* on the same plan structure share one
    /// cache entry: the key is the structure hash, not the weights.
    #[test]
    fn weight_changes_reuse_the_structural_embedding(
        gen_seed in 0u64..1_000,
        seed in 0u64..1_000,
    ) {
        let problem = random_problem(gen_seed);
        let e = engine(1);
        let mut req = SolveRequest::new(problem.clone(), seed);
        req.backend = Some(Backend::Annealer);
        let first = e.solve(&req).unwrap();
        prop_assert!(!first.cache_hit);

        // Rescaling every saving keeps the QUBO adjacency (structure hash)
        // intact, so the second request must be served from the cache.
        let mut b = MqoProblem::builder();
        for q in problem.queries() {
            let costs: Vec<f64> = problem.plans_of(q).map(|p| problem.plan_cost(p)).collect();
            b.add_query(&costs);
        }
        for &(a, c, v) in problem.savings() {
            b.add_saving(a, c, v * 0.5).unwrap();
        }
        let rescaled = b.build().unwrap();
        let mut req2 = SolveRequest::new(rescaled, seed);
        req2.backend = Some(Backend::Annealer);
        let second = e.solve(&req2).unwrap();
        prop_assert!(second.cache_hit, "same structure, new weights: hit");
        let stats = e.cache_stats();
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
