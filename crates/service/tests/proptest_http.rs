//! Property-based fuzzing of the HTTP request reader (ISSUE-5, satellite c).
//!
//! `http::read_request` is the service's unauthenticated network-facing
//! parsing surface: whatever bytes a client throws at the socket flow
//! through it first. These properties feed it arbitrary byte streams —
//! pure noise, truncated/corrupted valid requests, and adversarial
//! header shapes — through the in-memory [`RequestSource`] impl and
//! assert the total-function contract: the reader never panics and every
//! outcome is either a parsed [`Request`] or a typed [`HttpError`] whose
//! `http_status()` is an expected client-error code.

use mqo_service::http::{read_request, HttpError, HttpLimits};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tight limits so the generated inputs can actually trip every cap.
fn small_limits() -> HttpLimits {
    HttpLimits {
        max_body: 256,
        max_line_bytes: 128,
        max_header_count: 8,
        deadline: None,
    }
}

/// Runs the reader over an in-memory byte stream, translating a panic —
/// which must never happen — into a test failure, and checking that any
/// error carries a legal response status.
fn parse_never_panics(bytes: &[u8], limits: &HttpLimits) -> Result<(), TestCaseError> {
    let limits = *limits;
    let owned = bytes.to_vec();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut source: &[u8] = &owned;
        read_request(&mut source, &limits)
    }));
    let result = match outcome {
        Ok(r) => r,
        Err(_) => {
            return Err(TestCaseError::fail(format!(
                "read_request panicked on {} bytes: {:?}",
                bytes.len(),
                &bytes[..bytes.len().min(64)]
            )))
        }
    };
    match result {
        Ok(req) => {
            // A parse that succeeds must respect the configured caps.
            prop_assert!(req.body.len() <= limits.max_body);
            prop_assert!(!req.method.is_empty());
        }
        Err(e) => {
            let status = e.http_status();
            prop_assert!(
                matches!(status, 400 | 408 | 413 | 431),
                "unexpected status {status} for {e}"
            );
            // In-memory sources cannot time out: the deadline is None.
            prop_assert!(!matches!(e, HttpError::Timeout));
        }
    }
    Ok(())
}

/// A syntactically valid request the corruption strategies start from.
fn valid_request(body_len: usize) -> Vec<u8> {
    let body: Vec<u8> = (0..body_len).map(|i| b'a' + (i % 26) as u8).collect();
    let mut raw = format!(
        "POST /solve HTTP/1.1\r\nhost: test\r\ncontent-type: application/json\r\n\
         content-length: {body_len}\r\nconnection: close\r\n\r\n"
    )
    .into_bytes();
    raw.extend_from_slice(&body);
    raw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise: arbitrary bytes of arbitrary length.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(0u8..=255, 0..512)) {
        parse_never_panics(&bytes, &small_limits())?;
        parse_never_panics(&bytes, &HttpLimits::default())?;
    }

    /// Structured noise: a valid request truncated at an arbitrary point
    /// and with one arbitrary byte overwritten. This walks the parser
    /// through every state (request line, headers, separator, body) with
    /// a corruption at each.
    #[test]
    fn corrupted_valid_requests_never_panic(
        body_len in 0usize..64,
        cut in 0usize..256,
        flip_at in 0usize..256,
        flip_to in 0u8..=255,
    ) {
        let mut raw = valid_request(body_len);
        if flip_at < raw.len() {
            raw[flip_at] = flip_to;
        }
        raw.truncate(cut.min(raw.len()));
        parse_never_panics(&raw, &small_limits())?;
    }

    /// Adversarial header shapes: arbitrary counts of arbitrary-length
    /// header lines, colon or not, plus a declared content length that
    /// need not match the actual trailing bytes.
    #[test]
    fn adversarial_headers_never_panic(
        header_count in 0usize..16,
        header_len in 0usize..200,
        declared in 0usize..1024,
        actual in 0usize..300,
        with_colon in proptest::bool::ANY,
    ) {
        let mut raw = b"POST /solve HTTP/1.1\r\n".to_vec();
        for i in 0..header_count {
            let name = format!("x-h{i}");
            let filler = "v".repeat(header_len);
            if with_colon {
                raw.extend_from_slice(format!("{name}: {filler}\r\n").as_bytes());
            } else {
                raw.extend_from_slice(format!("{name}{filler}\r\n").as_bytes());
            }
        }
        raw.extend_from_slice(format!("content-length: {declared}\r\n\r\n").as_bytes());
        raw.extend_from_slice(&vec![b'x'; actual]);
        parse_never_panics(&raw, &small_limits())?;
    }

    /// Oversized declared bodies are rejected with the typed 413, never by
    /// allocating first: the reader must refuse before reading the body.
    #[test]
    fn huge_content_length_is_typed_not_allocated(extra in 1usize..1_000_000) {
        let limits = small_limits();
        let declared = limits.max_body + extra;
        let raw = format!(
            "POST /solve HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n"
        );
        let mut source: &[u8] = raw.as_bytes();
        match read_request(&mut source, &limits) {
            Err(HttpError::BodyTooLarge { declared: d, limit }) => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(limit, limits.max_body);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected BodyTooLarge, got {other:?}"
            ))),
        }
    }
}
