//! Property-based fuzzing of the HTTP request reader (ISSUE-5, satellite c)
//! and of the incremental parser behind the nonblocking event loop
//! (ISSUE-9, satellite c).
//!
//! `http::read_request` is the service's unauthenticated network-facing
//! parsing surface: whatever bytes a client throws at the socket flow
//! through it first. These properties feed it arbitrary byte streams —
//! pure noise, truncated/corrupted valid requests, and adversarial
//! header shapes — through the in-memory [`RequestSource`] impl and
//! assert the total-function contract: the reader never panics and every
//! outcome is either a parsed [`Request`] or a typed [`HttpError`] whose
//! `http_status()` is an expected client-error code.
//!
//! `http::parse_request` is the same grammar restated over a buffer
//! prefix for the event loop: it must agree with the blocking reader on
//! every complete input, stay at `Ok(None)` on every proper prefix no
//! matter how reads are split (the slow-loris path), walk pipelined
//! requests in order, and turn mid-pipeline garbage into the same typed
//! errors.

use mqo_service::http::{parse_request, read_request, HttpError, HttpLimits};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tight limits so the generated inputs can actually trip every cap.
fn small_limits() -> HttpLimits {
    HttpLimits {
        max_body: 256,
        max_line_bytes: 128,
        max_header_count: 8,
        deadline: None,
    }
}

/// Runs the reader over an in-memory byte stream, translating a panic —
/// which must never happen — into a test failure, and checking that any
/// error carries a legal response status.
fn parse_never_panics(bytes: &[u8], limits: &HttpLimits) -> Result<(), TestCaseError> {
    let limits = *limits;
    let owned = bytes.to_vec();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut source: &[u8] = &owned;
        read_request(&mut source, &limits)
    }));
    let result = match outcome {
        Ok(r) => r,
        Err(_) => {
            return Err(TestCaseError::fail(format!(
                "read_request panicked on {} bytes: {:?}",
                bytes.len(),
                &bytes[..bytes.len().min(64)]
            )))
        }
    };
    match result {
        Ok(req) => {
            // A parse that succeeds must respect the configured caps.
            prop_assert!(req.body.len() <= limits.max_body);
            prop_assert!(!req.method.is_empty());
        }
        Err(e) => {
            let status = e.http_status();
            prop_assert!(
                matches!(status, 400 | 408 | 413 | 431),
                "unexpected status {status} for {e}"
            );
            // In-memory sources cannot time out: the deadline is None.
            prop_assert!(!matches!(e, HttpError::Timeout));
        }
    }
    Ok(())
}

/// A syntactically valid request the corruption strategies start from.
fn valid_request(body_len: usize) -> Vec<u8> {
    let body: Vec<u8> = (0..body_len).map(|i| b'a' + (i % 26) as u8).collect();
    let mut raw = format!(
        "POST /solve HTTP/1.1\r\nhost: test\r\ncontent-type: application/json\r\n\
         content-length: {body_len}\r\nconnection: close\r\n\r\n"
    )
    .into_bytes();
    raw.extend_from_slice(&body);
    raw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise: arbitrary bytes of arbitrary length.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(0u8..=255, 0..512)) {
        parse_never_panics(&bytes, &small_limits())?;
        parse_never_panics(&bytes, &HttpLimits::default())?;
    }

    /// Structured noise: a valid request truncated at an arbitrary point
    /// and with one arbitrary byte overwritten. This walks the parser
    /// through every state (request line, headers, separator, body) with
    /// a corruption at each.
    #[test]
    fn corrupted_valid_requests_never_panic(
        body_len in 0usize..64,
        cut in 0usize..256,
        flip_at in 0usize..256,
        flip_to in 0u8..=255,
    ) {
        let mut raw = valid_request(body_len);
        if flip_at < raw.len() {
            raw[flip_at] = flip_to;
        }
        raw.truncate(cut.min(raw.len()));
        parse_never_panics(&raw, &small_limits())?;
    }

    /// Adversarial header shapes: arbitrary counts of arbitrary-length
    /// header lines, colon or not, plus a declared content length that
    /// need not match the actual trailing bytes.
    #[test]
    fn adversarial_headers_never_panic(
        header_count in 0usize..16,
        header_len in 0usize..200,
        declared in 0usize..1024,
        actual in 0usize..300,
        with_colon in proptest::bool::ANY,
    ) {
        let mut raw = b"POST /solve HTTP/1.1\r\n".to_vec();
        for i in 0..header_count {
            let name = format!("x-h{i}");
            let filler = "v".repeat(header_len);
            if with_colon {
                raw.extend_from_slice(format!("{name}: {filler}\r\n").as_bytes());
            } else {
                raw.extend_from_slice(format!("{name}{filler}\r\n").as_bytes());
            }
        }
        raw.extend_from_slice(format!("content-length: {declared}\r\n\r\n").as_bytes());
        raw.extend_from_slice(&vec![b'x'; actual]);
        parse_never_panics(&raw, &small_limits())?;
    }

    /// Differential property: the incremental parser and the blocking
    /// reader are the same grammar. On any corrupted/truncated valid
    /// request, a complete parse agrees field-for-field, a typed error
    /// agrees on the response status, and an incomplete verdict
    /// (`Ok(None)`) coincides with the blocking reader failing on EOF.
    #[test]
    fn incremental_parser_agrees_with_blocking_reader(
        body_len in 0usize..64,
        cut in 0usize..256,
        flip_at in 0usize..256,
        flip_to in 0u8..=255,
    ) {
        let mut raw = valid_request(body_len);
        if flip_at < raw.len() {
            raw[flip_at] = flip_to;
        }
        raw.truncate(cut.min(raw.len()));
        let limits = small_limits();
        let incremental = parse_request(&raw, &limits);
        let mut source: &[u8] = &raw;
        let blocking = read_request(&mut source, &limits);
        match incremental {
            Ok(Some(parsed)) => match blocking {
                Ok(req) => {
                    prop_assert_eq!(&parsed.request.method, &req.method);
                    prop_assert_eq!(&parsed.request.path, &req.path);
                    prop_assert_eq!(&parsed.request.body, &req.body);
                    prop_assert!(parsed.consumed <= raw.len());
                }
                Err(e) => return Err(TestCaseError::fail(format!(
                    "incremental parsed a request the blocking reader rejects: {e}"
                ))),
            },
            Ok(None) => prop_assert!(
                blocking.is_err(),
                "incremental says incomplete but the blocking reader parsed it"
            ),
            Err(e) => match blocking {
                Err(b) => prop_assert_eq!(e.http_status(), b.http_status()),
                Ok(_) => return Err(TestCaseError::fail(format!(
                    "incremental rejects ({e}) a request the blocking reader accepts"
                ))),
            },
        }
    }

    /// Split-read boundaries: every proper prefix of a valid request is
    /// `Ok(None)` — never an error, never a premature parse — and the full
    /// buffer parses with `consumed` equal to the request length. This is
    /// the byte-at-a-time slow-loris path: the event loop keeps buffering
    /// without misparsing regardless of where the kernel splits reads.
    #[test]
    fn every_prefix_of_a_valid_request_is_incomplete_not_an_error(
        body_len in 0usize..64,
        keep_alive in proptest::bool::ANY,
    ) {
        let mut raw = valid_request(body_len);
        if keep_alive {
            let text = String::from_utf8(raw).unwrap();
            raw = text.replace("connection: close", "connection: keep-alive").into_bytes();
        }
        let limits = small_limits();
        for cut in 0..raw.len() {
            match parse_request(&raw[..cut], &limits) {
                Ok(None) => {}
                other => return Err(TestCaseError::fail(format!(
                    "prefix of {cut}/{} bytes gave {other:?}", raw.len()
                ))),
            }
        }
        match parse_request(&raw, &limits) {
            Ok(Some(parsed)) => {
                prop_assert_eq!(parsed.consumed, raw.len());
                prop_assert_eq!(parsed.close, !keep_alive);
                prop_assert_eq!(parsed.request.body.len(), body_len);
            }
            other => return Err(TestCaseError::fail(format!(
                "complete request gave {other:?}"
            ))),
        }
    }

    /// Pipelining: several keep-alive requests concatenated into one
    /// segment parse strictly in order, each `consumed` draining exactly
    /// one request, with an empty buffer at the end.
    #[test]
    fn pipelined_requests_in_one_segment_parse_in_order(
        body_lens in vec(0usize..48, 1..6),
    ) {
        let limits = small_limits();
        let mut buf = Vec::new();
        for len in &body_lens {
            let text = String::from_utf8(valid_request(*len)).unwrap();
            buf.extend_from_slice(
                text.replace("connection: close", "connection: keep-alive").as_bytes(),
            );
        }
        for (k, len) in body_lens.iter().enumerate() {
            match parse_request(&buf, &limits) {
                Ok(Some(parsed)) => {
                    prop_assert_eq!(
                        parsed.request.body.len(), *len,
                        "request {} parsed out of order", k
                    );
                    prop_assert!(!parsed.close);
                    buf.drain(..parsed.consumed);
                }
                other => return Err(TestCaseError::fail(format!(
                    "pipelined request {k} gave {other:?}"
                ))),
            }
        }
        prop_assert!(buf.is_empty());
    }

    /// Mid-pipeline malformed input: a valid request followed by one of
    /// several definitively-broken tails parses the valid request first,
    /// then answers the tail with a typed client-error status — the event
    /// loop turns that into an error response plus connection close, never
    /// a hang or a panic.
    #[test]
    fn mid_pipeline_malformed_tails_are_typed_errors(
        body_len in 0usize..48,
        tail_kind in 0usize..4,
    ) {
        let limits = small_limits();
        let text = String::from_utf8(valid_request(body_len)).unwrap();
        let mut buf = text.replace("connection: close", "connection: keep-alive").into_bytes();
        let tail: &[u8] = match tail_kind {
            0 => b"POST /solve HTTP/1.1\r\ncontent-length: zzz\r\n\r\n",
            1 => b"not-even-a-request-line\r\n\r\n",
            2 => b"POST /solve HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n",
            _ => b"POST\r\n\r\n",
        };
        buf.extend_from_slice(tail);
        let first = match parse_request(&buf, &limits) {
            Ok(Some(parsed)) => parsed,
            other => return Err(TestCaseError::fail(format!(
                "leading valid request gave {other:?}"
            ))),
        };
        buf.drain(..first.consumed);
        match parse_request(&buf, &limits) {
            Err(e) => {
                let status = e.http_status();
                prop_assert!(
                    matches!(status, 400 | 408 | 413 | 431),
                    "unexpected status {status} for {e}"
                );
            }
            other => return Err(TestCaseError::fail(format!(
                "malformed tail {tail_kind} gave {other:?}"
            ))),
        }
    }

    /// Oversized declared bodies are rejected with the typed 413, never by
    /// allocating first: the reader must refuse before reading the body.
    #[test]
    fn huge_content_length_is_typed_not_allocated(extra in 1usize..1_000_000) {
        let limits = small_limits();
        let declared = limits.max_body + extra;
        let raw = format!(
            "POST /solve HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n"
        );
        let mut source: &[u8] = raw.as_bytes();
        match read_request(&mut source, &limits) {
            Err(HttpError::BodyTooLarge { declared: d, limit }) => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(limit, limits.max_body);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected BodyTooLarge, got {other:?}"
            ))),
        }
    }
}
