//! Chaos-drain integration tests (ISSUE-5, satellite d).
//!
//! A server under nonzero chaos rates — worker panics, worker deaths,
//! backend failures — must never lose a request: every replayed request
//! ends as a valid solve (200) or a typed error (500/503 with a `reason`
//! tag), the drain completes without hanging, and every killed worker is
//! respawned. A second battery pins the determinism contract: the fault
//! schedule is keyed on request seeds, so identical seeds and chaos
//! config produce identical chaos counters and per-request outcomes at
//! any worker count, and an inert chaos config (rates all zero) is
//! indistinguishable from a chaos-free server.

use mqo_chimera::graph::ChimeraGraph;
use mqo_service::chaos::{ChaosConfig, CHAOS_PANIC_MESSAGE};
use mqo_service::engine::EngineConfig;
use mqo_service::http::roundtrip;
use mqo_service::metrics::MetricsSnapshot;
use mqo_service::server::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Installs a panic hook that swallows the injected chaos panics (they are
/// load-bearing for these tests and would otherwise spray backtraces over
/// the output) while delegating every other panic to the default hook.
fn silence_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(CHAOS_PANIC_MESSAGE) {
                prev(info);
            }
        }));
    });
}

fn chaos_server(chaos: ChaosConfig, workers: usize, breaker_threshold: u32) -> Server {
    let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
    engine.device.num_reads = 10;
    engine.device.num_gauges = 2;
    engine.chaos = chaos;
    engine.breaker.failure_threshold = breaker_threshold;
    engine.breaker.open_ms = 50;
    let mut config = ServerConfig::new(engine);
    config.queue.workers = workers;
    config.queue.batch_size = 4;
    Server::start(config).expect("bind loopback")
}

/// One tiny two-query instance; the structure is shared so the cache warms,
/// while the per-request `seed` drives both annealing and the chaos rolls.
fn body(seed: u64) -> Vec<u8> {
    format!(
        r#"{{"problem": {{"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}}, "seed": {seed}}}"#
    )
    .into_bytes()
}

/// Replays `bodies` against the server from `clients` concurrent threads
/// and returns `(index, status, parsed body)` per request. Panics if any
/// connection errors — under chaos the server must still answer every
/// accepted request.
fn replay(
    addr: std::net::SocketAddr,
    bodies: Vec<Vec<u8>>,
    clients: usize,
) -> Vec<(usize, u16, serde_json::Value)> {
    let bodies = Arc::new(bodies);
    let next = Arc::new(AtomicUsize::new(0));
    let results = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let bodies = Arc::clone(&bodies);
            let next = Arc::clone(&next);
            let results = Arc::clone(&results);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= bodies.len() {
                    return;
                }
                let (status, reply) =
                    roundtrip(addr, "POST", "/solve", &bodies[i]).expect("request completes");
                let v: serde_json::Value =
                    serde_json::from_slice(&reply).expect("body is valid JSON");
                results.lock().unwrap().push((i, status, v));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let mut results = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
    results.sort_by_key(|(i, _, _)| *i);
    results
}

/// The chaos counters that must not depend on scheduling: everything keyed
/// on request seeds, plus the outcome tallies they imply.
fn deterministic_counters(s: &MetricsSnapshot) -> Vec<(&'static str, u64)> {
    vec![
        ("requests_total", s.requests_total),
        ("solved_total", s.solved_total),
        ("rejected_internal", s.rejected_internal),
        ("rejected_unavailable", s.rejected_unavailable),
        ("worker_panics_caught", s.worker_panics_caught),
        ("worker_respawns", s.worker_respawns),
        ("chaos_panics_injected", s.chaos_panics_injected),
        ("chaos_kills_injected", s.chaos_kills_injected),
        (
            "chaos_backend_failures_injected",
            s.chaos_backend_failures_injected,
        ),
    ]
}

/// Fifty different chaos schedules: whatever mix of panics, worker deaths,
/// and backend failures a seed produces, the drain is clean — every
/// request is answered with a solve or a typed error, shutdown completes,
/// and kills equal respawns.
#[test]
fn fifty_chaos_seeds_drain_cleanly() {
    silence_chaos_panics();
    const REQUESTS: usize = 8;
    for chaos_seed in 0..50u64 {
        let chaos = ChaosConfig {
            seed: chaos_seed,
            worker_panic_rate: 0.3,
            worker_kill_rate: 0.3,
            backend_failure_rate: 0.1,
            ..ChaosConfig::NONE
        };
        let server = chaos_server(chaos, 2, 2);
        let addr = server.local_addr();
        let bodies = (0..REQUESTS)
            .map(|i| body(chaos_seed * 100 + i as u64))
            .collect();
        let results = replay(addr, bodies, 3);
        assert_eq!(results.len(), REQUESTS, "seed {chaos_seed}: lost requests");
        let mut solved = 0u64;
        for (i, status, v) in &results {
            match status {
                200 => {
                    assert!(v["cost"].is_number(), "seed {chaos_seed} request {i}: {v}");
                    solved += 1;
                }
                500 | 503 => {
                    let reason = v["reason"].as_str().unwrap_or_else(|| {
                        panic!("seed {chaos_seed} request {i}: {status} without reason: {v}")
                    });
                    assert!(
                        ["internal_error", "backend_unavailable"].contains(&reason),
                        "seed {chaos_seed} request {i}: unexpected reason {reason}"
                    );
                }
                other => panic!("seed {chaos_seed} request {i}: unexpected status {other}: {v}"),
            }
        }
        // Drain: shutdown must complete (a hang here fails the harness
        // timeout), and the books must balance afterwards.
        server.shutdown();
        let s = server.metrics().snapshot();
        assert_eq!(s.requests_total, REQUESTS as u64, "seed {chaos_seed}");
        assert_eq!(s.solved_total, solved, "seed {chaos_seed}");
        assert_eq!(
            s.solved_total + s.rejected_internal + s.rejected_unavailable,
            REQUESTS as u64,
            "seed {chaos_seed}: outcomes must partition the requests"
        );
        assert_eq!(
            s.worker_panics_caught, s.chaos_panics_injected,
            "seed {chaos_seed}"
        );
        assert_eq!(
            s.worker_respawns, s.chaos_kills_injected,
            "seed {chaos_seed}: every killed worker is respawned"
        );
    }
}

/// Same seeds + same chaos config at 1 worker and at 4 workers: the fault
/// schedule is keyed on request seeds, not scheduling, so the per-request
/// outcomes and every chaos counter agree exactly. (Breakers are disabled
/// here: their trips depend on attempt order, which is legitimately
/// scheduling-dependent.)
#[test]
fn chaos_schedule_is_identical_across_worker_counts() {
    silence_chaos_panics();
    const REQUESTS: usize = 24;
    let chaos = ChaosConfig {
        seed: 123,
        worker_panic_rate: 0.4,
        worker_kill_rate: 0.2,
        backend_failure_rate: 0.3,
        ..ChaosConfig::NONE
    };
    let mut runs = Vec::new();
    for workers in [1usize, 4] {
        let server = chaos_server(chaos, workers, 0);
        let addr = server.local_addr();
        let bodies = (0..REQUESTS).map(|i| body(i as u64)).collect();
        let results = replay(addr, bodies, 3);
        server.shutdown();
        let outcomes: BTreeMap<usize, u16> =
            results.iter().map(|(i, status, _)| (*i, *status)).collect();
        runs.push((workers, outcomes, server.metrics().snapshot()));
    }
    let (_, outcomes_a, snap_a) = &runs[0];
    let (_, outcomes_b, snap_b) = &runs[1];
    assert_eq!(
        outcomes_a, outcomes_b,
        "per-request outcomes must not depend on the worker count"
    );
    assert_eq!(
        deterministic_counters(snap_a),
        deterministic_counters(snap_b),
        "chaos counters must not depend on the worker count"
    );
    // The schedule actually fired: this config injects faults.
    assert!(snap_a.chaos_panics_injected > 0, "panic stream never fired");
    assert!(
        snap_a.chaos_backend_failures_injected > 0,
        "backend stream never fired"
    );
}

/// An inert chaos config (seed set, all rates zero) is indistinguishable
/// from a chaos-free server: identical solve answers (modulo wall-clock
/// timing fields) and identically zero fault counters.
#[test]
fn inert_chaos_is_indistinguishable_from_clean() {
    silence_chaos_panics();
    const REQUESTS: usize = 6;
    let inert = ChaosConfig {
        seed: 99,
        ..ChaosConfig::NONE
    };
    assert!(inert.is_inert());
    let mut answers = Vec::new();
    for chaos in [ChaosConfig::NONE, inert] {
        let server = chaos_server(chaos, 2, 5);
        let addr = server.local_addr();
        let bodies = (0..REQUESTS).map(|i| body(i as u64)).collect();
        let mut results = replay(addr, bodies, 1);
        server.shutdown();
        let s = server.metrics().snapshot();
        assert_eq!(s.solved_total, REQUESTS as u64);
        assert_eq!(s.chaos_panics_injected, 0);
        assert_eq!(s.chaos_kills_injected, 0);
        assert_eq!(s.chaos_backend_failures_injected, 0);
        assert_eq!(s.worker_respawns, 0);
        // Strip the only nondeterministic fields (timings) before the
        // bit-identical comparison.
        for (_, _, v) in &mut results {
            if let serde_json::Value::Object(fields) = v {
                fields.retain(|(k, _)| k != "wall_us" && k != "queue_wait_us");
            }
        }
        answers.push(results);
    }
    assert_eq!(
        answers[0], answers[1],
        "inert chaos must answer bit-identically to a clean server"
    );
}

/// Total worker loss is survivable: with kill-on-panic at rate 1.0 every
/// chaos-hit request takes a worker down, yet the supervisor keeps the
/// pool alive and the server keeps answering — including clean requests
/// interleaved after the massacre.
#[test]
fn the_pool_survives_repeated_total_worker_loss() {
    silence_chaos_panics();
    let chaos = ChaosConfig {
        seed: 7,
        worker_panic_rate: 1.0,
        worker_kill_rate: 1.0,
        backend_failure_rate: 0.0,
        ..ChaosConfig::NONE
    };
    let server = chaos_server(chaos, 2, 0);
    let addr = server.local_addr();
    for i in 0..6u64 {
        let (status, reply) = roundtrip(addr, "POST", "/solve", &body(i)).unwrap();
        assert_eq!(status, 500, "{}", String::from_utf8_lossy(&reply));
        let v: serde_json::Value = serde_json::from_slice(&reply).unwrap();
        assert_eq!(v["reason"], "internal_error");
    }
    let (status, _) = roundtrip(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200, "server must stay up after losing workers");
    server.shutdown();
    let s = server.metrics().snapshot();
    assert_eq!(s.chaos_kills_injected, 6);
    assert_eq!(s.worker_respawns, 6);
    assert_eq!(s.rejected_internal, 6);
}

/// The answer-integrity acceptance drain: with sample corruption injected
/// into every successful answer path, the run ends with **zero unflagged
/// corrupted answers** — every corruption is deterministically repaired to
/// a verified-feasible selection with a truthful cost (or rejected with a
/// typed 500), and the `/metrics` books reconcile exactly:
/// `chaos_corruptions_injected == integrity_violations ==
/// integrity_repairs + integrity_rejects`.
#[test]
fn corruption_chaos_drains_with_zero_unflagged_answers() {
    silence_chaos_panics();
    const REQUESTS: usize = 16;
    // Client-side re-verification oracle for `body()`'s instance:
    // costs [2, 4, 3, 1], one saving (plan 1, plan 2) of 5.
    let verify = |selection: &[u64], cost: f64| {
        assert_eq!(selection.len(), 2, "one plan per query");
        assert!(selection[0] <= 1 && (2..=3).contains(&selection[1]));
        let costs = [2.0, 4.0, 3.0, 1.0];
        let mut expect = costs[selection[0] as usize] + costs[selection[1] as usize];
        if selection[0] == 1 && selection[1] == 2 {
            expect -= 5.0;
        }
        assert_eq!(cost, expect, "served cost must be truthful");
    };
    for repair in [true, false] {
        let chaos = ChaosConfig {
            seed: 31,
            sample_corruption_rate: 0.6,
            ..ChaosConfig::NONE
        };
        let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
        engine.device.num_reads = 10;
        engine.device.num_gauges = 2;
        engine.chaos = chaos;
        engine.integrity_repair = repair;
        let mut config = ServerConfig::new(engine);
        config.queue.workers = 2;
        config.queue.batch_size = 4;
        let server = Server::start(config).expect("bind loopback");
        let addr = server.local_addr();
        let bodies = (0..REQUESTS).map(|i| body(i as u64)).collect();
        let results = replay(addr, bodies, 3);
        assert_eq!(results.len(), REQUESTS, "repair={repair}: lost requests");
        let mut rejected = 0u64;
        for (i, status, v) in &results {
            match status {
                200 => {
                    let selection: Vec<u64> = match &v["selection"] {
                        serde_json::Value::Array(items) => {
                            items.iter().map(|p| p.as_u64().expect("plan id")).collect()
                        }
                        other => panic!("request {i}: selection is not an array: {other:?}"),
                    };
                    verify(&selection, v["cost"].as_f64().expect("cost"));
                }
                500 => {
                    assert!(!repair, "with repair on every corruption is fixable");
                    assert_eq!(v["reason"], "integrity_violation", "request {i}: {v}");
                    rejected += 1;
                }
                other => panic!("repair={repair} request {i}: status {other}: {v}"),
            }
        }
        server.shutdown();
        let s = server.metrics().snapshot();
        assert!(
            s.chaos_corruptions_injected > 0,
            "repair={repair}: the corruption stream never fired"
        );
        assert_eq!(
            s.integrity_violations, s.chaos_corruptions_injected,
            "repair={repair}: every injected corruption must be flagged"
        );
        assert_eq!(
            s.integrity_repairs + s.integrity_rejects,
            s.integrity_violations,
            "repair={repair}: flagged answers are repaired or rejected, never served raw"
        );
        if repair {
            assert_eq!(s.integrity_rejects, 0);
            assert_eq!(s.solved_total, REQUESTS as u64);
        } else {
            assert_eq!(s.integrity_repairs, 0);
            assert_eq!(s.integrity_rejects, rejected);
            assert_eq!(s.solved_total + rejected, REQUESTS as u64);
        }
    }
}
