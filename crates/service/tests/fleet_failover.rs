//! Fleet-supervision and zero-loss failover integration tests (ISSUE-10).
//!
//! These tests drive *real* `mqo_serve` cell processes (via
//! `CARGO_BIN_EXE_mqo_serve`) under a supervised `mqo_router` front and
//! prove the robustness contract end to end:
//!
//! * a SIGKILLed cell respawns and the fleet loses nothing — every request
//!   ends as exactly one final outcome (a 200 solve or a typed error), and
//!   the seeded 50-seed kill-chaos drain completes with zero lost requests
//!   and answers bit-identical to a solo unsupervised server;
//! * a crash-looping cell is quarantined and its shard range remapped onto
//!   the healthy cells;
//! * transparent replay after a cell death returns answers bit-identical
//!   to the first attempt — solves are deterministic by `(problem, seed)`,
//!   which is the idempotency argument that makes replay safe;
//! * the forwarded deadline budget strictly decreases across hops
//!   ([`mqo_service::shard::next_deadline`]).

use mqo_chimera::graph::ChimeraGraph;
use mqo_service::chaos::CellKillSchedule;
use mqo_service::engine::EngineConfig;
use mqo_service::http::roundtrip;
use mqo_service::server::{Server, ServerConfig};
use mqo_service::shard::{next_deadline, MqoRouter, MqoRouterConfig};
use mqo_service::supervisor::SupervisorConfig;
use proptest::prelude::*;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A vector shared across loadgen worker threads.
type SharedVec<T> = Arc<Mutex<Vec<T>>>;

/// A free loopback port: bind :0, read the address, drop the listener.
/// The tiny reuse race is acceptable in tests.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind probe");
    listener.local_addr().expect("probe addr").to_string()
}

/// The cell command template: the real `mqo_serve` binary on the small
/// graph with the same solver knobs as [`solo_server`], so answers are
/// comparable bit-for-bit.
fn cell_command() -> Vec<String> {
    [
        env!("CARGO_BIN_EXE_mqo_serve"),
        "--small",
        "--addr",
        "{addr}",
        "--reads",
        "20",
        "--gauges",
        "2",
        "--workers",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// An in-process reference server configured identically to the supervised
/// cells: the bit-identity oracle.
fn solo_server() -> Server {
    let mut engine = EngineConfig::new(ChimeraGraph::new(2, 2));
    engine.device.num_reads = 20;
    engine.device.num_gauges = 2;
    Server::start(ServerConfig::new(engine)).expect("bind solo")
}

/// A supervised router over `n` freshly spawned cells. Fast breaker and
/// backoff so kills and recoveries play out in test time.
fn supervised_router(n: usize, kill_schedule: CellKillSchedule) -> MqoRouter {
    let cells: Vec<String> = (0..n).map(|_| free_addr()).collect();
    let mut sup = SupervisorConfig::new(cell_command(), cells.clone());
    sup.probe_interval_ms = 50;
    sup.probe_timeout_ms = 500;
    sup.backoff_initial_ms = 50;
    sup.backoff_max_ms = 500;
    sup.kill_schedule = kill_schedule;
    let mut config = MqoRouterConfig::new(cells);
    config.supervisor = Some(sup);
    config.breaker.failure_threshold = 1;
    config.breaker.open_ms = 100;
    config.io_timeout_ms = 2_000;
    config.response_cache = 0;
    MqoRouter::start(config).expect("start supervised router")
}

/// One small two-query instance body under `seed`; all seeds share the
/// structure, so they all land on the same shard.
fn body(seed: u64) -> Vec<u8> {
    format!(
        r#"{{"problem": {{"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}}, "seed": {seed}}}"#
    )
    .into_bytes()
}

/// A structurally different instance (three plans in query 0), for shard
/// coverage in the quarantine test.
fn body_alt(seed: u64) -> Vec<u8> {
    format!(
        r#"{{"problem": {{"queries": [[2,4,6],[3,1]], "savings": [[1,3,5.0]]}}, "seed": {seed}}}"#
    )
    .into_bytes()
}

/// Sends until a 200 or the attempt budget is spent; shed/failed statuses
/// (429/5xx while the fleet recovers) retry after a short pause. Returns
/// the final `(status, body)`.
fn solve_with_retry(addr: SocketAddr, body: &[u8], attempts: u32) -> (u16, Vec<u8>) {
    let mut last = (0u16, Vec::new());
    for _ in 0..attempts.max(1) {
        match roundtrip(addr, "POST", "/solve", body) {
            Ok((status, reply)) => {
                if status == 200 {
                    return (status, reply);
                }
                last = (status, reply);
            }
            Err(e) => last = (0, e.to_string().into_bytes()),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    last
}

/// The solution surface of a solve answer — the fields that must be
/// bit-identical across cells, replays, and caches (timing fields vary).
fn surface(reply: &[u8]) -> serde_json::Value {
    let v: serde_json::Value = serde_json::from_slice(reply)
        .unwrap_or_else(|e| panic!("unparseable reply {}: {e}", String::from_utf8_lossy(reply)));
    serde_json::json!({
        "selection": v["selection"],
        "cost": v["cost"],
        "backend": v["backend"],
        "reads": v["reads"],
        "qubits_used": v["qubits_used"],
    })
}

#[test]
fn sigkilled_cell_respawns_and_requests_keep_completing() {
    let router = supervised_router(2, CellKillSchedule::default());
    let addr = router.local_addr();

    // Warm the fleet, then SIGKILL cell 0 and keep sending: every request
    // must still complete (transparent replay on the survivor plus the
    // supervisor respawning the victim), and the respawn must be counted.
    for seed in 0..4u64 {
        let (status, reply) = solve_with_retry(addr, &body(seed), 20);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));
    }
    let supervisor = router.supervisor().expect("supervised").clone();
    supervisor.kill_cell(0);
    for seed in 4..12u64 {
        let (status, reply) = solve_with_retry(addr, &body(seed), 20);
        assert_eq!(
            status,
            200,
            "request after kill: {}",
            String::from_utf8_lossy(&reply)
        );
    }
    // The monitor notices the death and respawns within its backoff.
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.metrics().snapshot().cell_respawns == 0 {
        assert!(Instant::now() < deadline, "respawn never happened");
        std::thread::sleep(Duration::from_millis(20));
    }
    let snapshot = router.metrics().snapshot();
    assert!(snapshot.cell_respawns >= 1, "respawn counted");
    assert_eq!(snapshot.crash_loops_quarantined, 0, "one kill is no loop");
    // The respawned cell answers probes again.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let cells = supervisor.snapshots();
        if cells.iter().all(|c| c.alive && !c.quarantined) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cell 0 never came back: {cells:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    router.shutdown();
}

#[test]
fn fifty_seed_kill_chaos_drain_loses_nothing_and_matches_solo() {
    // A seeded kill schedule SIGKILLs cells at deterministic times while a
    // 50-seed drain runs. Zero-loss: every seed must end as a 200 whose
    // solution surface is bit-identical to a solo unsupervised server.
    let schedule = CellKillSchedule {
        seed: 42,
        kills: 3,
        min_delay_ms: 200,
        max_delay_ms: 1_500,
    };
    let router = supervised_router(2, schedule);
    let addr = router.local_addr();
    let solo = solo_server();

    let seeds: Vec<u64> = (0..50).collect();
    let next = Arc::new(AtomicUsize::new(0));
    let answers: SharedVec<(u64, Vec<u8>)> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let next = Arc::clone(&next);
        let answers = Arc::clone(&answers);
        let seeds = seeds.clone();
        handles.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= seeds.len() {
                return;
            }
            let seed = seeds[i];
            // Pace the drain so it overlaps the kill schedule window.
            std::thread::sleep(Duration::from_millis(25));
            let (status, reply) = solve_with_retry(addr, &body(seed), 40);
            assert_eq!(
                status,
                200,
                "seed {seed} lost: {}",
                String::from_utf8_lossy(&reply)
            );
            answers.lock().unwrap().push((seed, reply));
        }));
    }
    for handle in handles {
        handle.join().expect("drain thread");
    }

    // Zero lost requests: the outcome set partitions the seed set.
    let answers = answers.lock().unwrap();
    assert_eq!(answers.len(), 50, "every seed accounted for");
    let mut seen: Vec<u64> = answers.iter().map(|(s, _)| *s).collect();
    seen.sort_unstable();
    assert_eq!(seen, seeds, "each seed answered exactly once");

    // Bit-identity against the solo oracle, regardless of which cell (or
    // which replay) produced the answer.
    for (seed, reply) in answers.iter() {
        let (status, solo_reply) =
            roundtrip(solo.local_addr(), "POST", "/solve", &body(*seed)).expect("solo solve");
        assert_eq!(status, 200);
        assert_eq!(
            surface(reply),
            surface(&solo_reply),
            "seed {seed} diverged from the solo server"
        );
    }

    // The chaos schedule actually fired and the supervisor recovered. The
    // kill offsets are measured from supervisor start and may trail the
    // drain (a kill landing in a respawn-backoff window is consumed
    // without a victim), so poll until at least one delivered kill has its
    // matching respawn on the books.
    let deadline = Instant::now() + Duration::from_secs(10);
    let snapshot = loop {
        let s = router.metrics().snapshot();
        if s.chaos_cell_kills_injected >= 1 && s.cell_respawns >= s.chaos_cell_kills_injected {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "kill schedule never fired or respawns lagged: \
             {} kills, {} respawns",
            s.chaos_cell_kills_injected,
            s.cell_respawns
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        snapshot.crash_loops_quarantined, 0,
        "chaos kills are no loop"
    );
    assert_eq!(snapshot.integrity_violations, 0, "no integrity violations");

    router.shutdown();
    solo.shutdown();
}

#[test]
fn killed_cell_mid_drain_partitions_the_request_set() {
    // No client-side retries here: the assertion is that the router gives
    // every request exactly one final outcome — a 200 or a *typed* error —
    // even when a cell is SIGKILLed mid-drain. Nothing hangs, nothing is
    // answered twice, nothing vanishes.
    let router = supervised_router(2, CellKillSchedule::default());
    let addr = router.local_addr();
    let supervisor = router.supervisor().expect("supervised").clone();

    let total = 24usize;
    let next = Arc::new(AtomicUsize::new(0));
    let outcomes: SharedVec<(usize, u16, Vec<u8>)> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let next = Arc::clone(&next);
        let outcomes = Arc::clone(&outcomes);
        handles.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            let (status, reply) =
                roundtrip(addr, "POST", "/solve", &body(i as u64)).expect("router answered");
            outcomes.lock().unwrap().push((i, status, reply));
        }));
    }
    // Kill a cell while the drain is in flight.
    std::thread::sleep(Duration::from_millis(60));
    supervisor.kill_cell(0);
    for handle in handles {
        handle.join().expect("drain thread");
    }

    let outcomes = outcomes.lock().unwrap();
    assert_eq!(
        outcomes.len(),
        total,
        "every request has exactly one outcome"
    );
    let mut indices: Vec<usize> = outcomes.iter().map(|(i, _, _)| *i).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..total).collect::<Vec<_>>());
    let mut solved = 0usize;
    for (i, status, reply) in outcomes.iter() {
        if *status == 200 {
            solved += 1;
        } else {
            // Failures must be typed rejections, never raw transport junk.
            let v: serde_json::Value = serde_json::from_slice(reply)
                .unwrap_or_else(|e| panic!("request {i}: untyped {status}: {e}"));
            assert!(
                v["reason"].as_str().is_some(),
                "request {i}: status {status} without a reason tag"
            );
        }
    }
    assert!(
        solved >= total / 2,
        "transparent failover kept most of the drain alive ({solved}/{total})"
    );
    router.shutdown();
}

#[test]
fn crash_looping_cell_is_quarantined_and_its_shards_remap() {
    // Cell 0 is spawned with a bogus flag, so it exits instantly, over and
    // over: the supervisor must quarantine it instead of respawning
    // forever, and the router must remap its shard range onto cell 1.
    let cells = vec![free_addr(), free_addr()];
    let mut sup = SupervisorConfig::new(cell_command(), cells.clone());
    sup.commands[0] = vec![
        env!("CARGO_BIN_EXE_mqo_serve").to_string(),
        "--definitely-not-a-flag".to_string(),
    ];
    sup.backoff_initial_ms = 10;
    sup.backoff_max_ms = 50;
    sup.crash_loop_threshold = 3;
    sup.probe_interval_ms = 50;
    let mut config = MqoRouterConfig::new(cells);
    config.supervisor = Some(sup);
    config.breaker.failure_threshold = 1;
    config.breaker.open_ms = 100;
    config.io_timeout_ms = 2_000;
    let router = MqoRouter::start(config).expect("start with one crash-looping cell");
    let addr = router.local_addr();

    let snapshot = router.metrics().snapshot();
    assert!(
        snapshot.crash_loops_quarantined >= 1,
        "crash loop detected during startup"
    );
    let cells = router.cells();
    assert!(
        cells[0].quarantined && !cells[1].quarantined,
        "exactly the broken cell is quarantined: {cells:?}"
    );
    // Both structures — whichever shard they hash to — answer via cell 1.
    for body in [body(1), body_alt(1)] {
        let (status, reply) = solve_with_retry(addr, &body, 10);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));
    }
    assert_eq!(
        router.cells()[0].forwarded,
        0,
        "quarantined cell got nothing"
    );
    assert!(router.cells()[1].forwarded >= 2, "survivor took the remap");
    router.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Replayed responses are bit-identical to the first attempt: solve a
    /// random-seeded instance, shut the owning cell down, and solve it
    /// again — the replay on the survivor must reproduce the original
    /// solution surface exactly (determinism by `(problem, seed)`).
    #[test]
    fn replayed_responses_are_bit_identical_to_the_first_attempt(seed in 0u64..1_000) {
        let cell_a = solo_server();
        let cell_b = solo_server();
        let mut config = MqoRouterConfig::new(vec![
            cell_a.local_addr().to_string(),
            cell_b.local_addr().to_string(),
        ]);
        config.breaker.failure_threshold = 1;
        config.breaker.open_ms = 50;
        config.io_timeout_ms = 1_000;
        // The replay must reach a cell, not the response cache.
        config.response_cache = 0;
        let router = MqoRouter::start(config).expect("bind router");

        let (status, first) =
            roundtrip(router.local_addr(), "POST", "/solve", &body(seed)).expect("first solve");
        prop_assert_eq!(status, 200);
        let owner_idx = router
            .cells()
            .iter()
            .position(|c| c.forwarded == 1)
            .expect("one cell answered");
        let (owner, survivor) = if owner_idx == 0 { (cell_a, cell_b) } else { (cell_b, cell_a) };
        owner.shutdown();

        let (status, replayed) =
            roundtrip(router.local_addr(), "POST", "/solve", &body(seed)).expect("replayed solve");
        prop_assert_eq!(status, 200);
        prop_assert_eq!(
            surface(&first),
            surface(&replayed),
            "replay diverged from the first attempt"
        );
        prop_assert!(router.metrics().snapshot().failovers >= 1);
        router.shutdown();
        survivor.shutdown();
    }

    /// The deadline forwarded upstream strictly decreases across replay
    /// hops and never resurrects an exhausted budget.
    #[test]
    fn forwarded_deadline_budget_strictly_decreases(
        budget in 1u64..10_000,
        elapsed_steps in proptest::collection::vec(0u64..500, 1..12),
    ) {
        let mut elapsed = 0u64;
        let mut previous: Option<u64> = None;
        for step in elapsed_steps {
            elapsed = elapsed.saturating_add(step);
            match next_deadline(budget, elapsed, previous) {
                Some(deadline) => {
                    prop_assert!(deadline >= 1, "forwarded deadlines are positive");
                    prop_assert!(
                        deadline <= budget.saturating_sub(elapsed),
                        "never exceeds the remaining budget"
                    );
                    if let Some(prev) = previous {
                        prop_assert!(deadline < prev, "strictly decreasing: {deadline} < {prev}");
                    }
                    previous = Some(deadline);
                }
                None => {
                    // Exhausted: it must stay exhausted at equal-or-later
                    // elapsed times with the same history.
                    prop_assert!(next_deadline(budget, elapsed + 1, previous).is_none());
                    break;
                }
            }
        }
    }
}

/// A supervised cell must not outlive its supervisor. The supervisor hands
/// every cell a stdin pipe plus `MQO_SUPERVISED=1`; the cell's watchdog
/// sees EOF the instant the pipe's write end closes (which the kernel does
/// even when the supervisor is SIGKILLed) and drains itself. This drives
/// the cell directly: hold the pipe, prove the cell stays up, drop the
/// pipe, prove the cell exits.
#[test]
fn supervised_cell_exits_when_the_supervisor_pipe_closes() {
    let addr = free_addr();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_mqo_serve"))
        .args([
            "--small",
            "--addr",
            &addr,
            "--reads",
            "10",
            "--workers",
            "1",
        ])
        .env("MQO_SUPERVISED", "1")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cell");
    let stdin = child.stdin.take().expect("piped stdin");
    let sock: SocketAddr = addr.parse().expect("cell addr");

    // Wait until the cell answers /healthz, proving the watchdog does not
    // fire while the pipe is open.
    let ready = Instant::now();
    loop {
        if roundtrip(sock, "GET", "/healthz", b"").is_ok() {
            break;
        }
        assert!(
            ready.elapsed() < Duration::from_secs(10),
            "cell never came up"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        matches!(child.try_wait(), Ok(None)),
        "cell stays alive while the supervisor holds the pipe"
    );

    // "Supervisor death": the write end closes, the cell must exit on its
    // own — nobody is left to kill it.
    drop(stdin);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("cell outlived its supervisor: {other:?}");
            }
        }
    }
}

/// End to end: SIGKILL a real supervised `mqo_router` process — its
/// `Drop`/drain cleanup never runs — and prove the cells it spawned die on
/// their own via the stdin watchdog instead of leaking as orphans.
#[test]
fn sigkilled_router_leaves_no_orphan_cells() {
    let router_addr = free_addr();
    let cell_a = free_addr();
    let cell_b = free_addr();
    let command = format!(
        "{} --small --addr {{addr}} --reads 10 --workers 1",
        env!("CARGO_BIN_EXE_mqo_serve")
    );
    let mut router = std::process::Command::new(env!("CARGO_BIN_EXE_mqo_router"))
        .args([
            "--addr",
            &router_addr,
            "--cells",
            &format!("{cell_a},{cell_b}"),
            "--supervise",
            &command,
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn router");

    // Wait until both cells answer: the fleet is up.
    let ready = Instant::now();
    for addr in [&cell_a, &cell_b] {
        let sock: SocketAddr = addr.parse().expect("cell addr");
        loop {
            if roundtrip(sock, "GET", "/healthz", b"").is_ok() {
                break;
            }
            if ready.elapsed() > Duration::from_secs(15) {
                let _ = router.kill();
                let _ = router.wait();
                panic!("fleet never came up");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // SIGKILL the router: no drain, no Drop, no cleanup of any kind.
    router.kill().expect("kill router");
    let _ = router.wait();

    // Both cells must notice the closed supervision pipe and exit: their
    // ports stop answering within the watchdog's bounded grace.
    let deadline = Instant::now() + Duration::from_secs(8);
    for addr in [&cell_a, &cell_b] {
        let sock: SocketAddr = addr.parse().expect("cell addr");
        loop {
            if roundtrip(sock, "GET", "/healthz", b"").is_err() {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "cell {addr} outlived the SIGKILLed router"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
