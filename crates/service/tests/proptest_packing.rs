//! Property-based tests of the chip-packing subsystem at the service
//! level (DESIGN.md §12): a packed solve must be bit-identical to the same
//! request solved solo with the same seed — across tenant counts, device
//! thread counts, and fault rates — and packing must never change *which*
//! requests are answerable, only how many share a programming cycle.

use mqo_chimera::graph::ChimeraGraph;
use mqo_core::problem::MqoProblem;
use mqo_service::api::SolveRequest;
use mqo_service::engine::{EngineConfig, SolveEngine};
use mqo_service::metrics::Metrics;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A random small MQO instance (2–3 queries, 1–2 plans each) — the paper's
/// small classes, sized so several fit a 3×3 chip at once.
fn random_problem(gen_seed: u64) -> MqoProblem {
    let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
    let mut b = MqoProblem::builder();
    let num_queries = rng.gen_range(2..=3);
    let queries: Vec<_> = (0..num_queries)
        .map(|_| {
            let num_plans = rng.gen_range(1..=2);
            let costs: Vec<f64> = (0..num_plans)
                .map(|_| f64::from(rng.gen_range(1..=8)))
                .collect();
            b.add_query(&costs)
        })
        .collect();
    for i in 0..queries.len() {
        for j in (i + 1)..queries.len() {
            if rng.gen_bool(0.7) {
                let pi = b.plans_of(queries[i]);
                let pj = b.plans_of(queries[j]);
                let a = pi[rng.gen_range(0..pi.len())];
                let c = pj[rng.gen_range(0..pj.len())];
                let saving = f64::from(rng.gen_range(1..=5));
                b.add_saving(a, c, saving).unwrap();
            }
        }
    }
    b.build().unwrap()
}

fn engine(packing: bool, threads: usize, fault_rate: f64) -> SolveEngine {
    let mut cfg = EngineConfig::new(ChimeraGraph::new(3, 3));
    cfg.device.num_reads = 20;
    cfg.device.num_gauges = 4;
    cfg.device.threads = threads;
    cfg.device.faults.readout_flip_rate = fault_rate;
    cfg.device.faults.stuck_read_rate = fault_rate;
    cfg.device.faults.qubit_dropout_rate = fault_rate / 4.0;
    cfg.packing = packing;
    SolveEngine::new(cfg, Arc::new(Metrics::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Packed answers are bit-identical to solo answers with the same seed:
    /// same selection, cost, and read statistics — for every tenant count,
    /// thread count, and fault rate, and regardless of how the remaining
    /// tenants of the cycle look.
    #[test]
    fn packed_solves_are_bit_identical_to_solo_solves(
        gen_seed in 0u64..4096,
        tenants in 2usize..=6,
        packed_threads in 1usize..=4,
        solo_threads in 1usize..=4,
        fault_idx in 0usize..3,
    ) {
        let fault_rate = [0.0, 0.02, 0.05][fault_idx];
        let reqs: Vec<SolveRequest> = (0..tenants as u64)
            .map(|i| SolveRequest::new(random_problem(gen_seed + 31 * i), gen_seed ^ (i << 8)))
            .collect();
        let refs: Vec<&SolveRequest> = reqs.iter().collect();
        let packed_engine = engine(true, packed_threads, fault_rate);
        let solo_engine = engine(false, solo_threads, fault_rate);
        let packed = packed_engine.solve_packed(&refs);
        prop_assert_eq!(packed.len(), reqs.len());
        for (req, slot) in reqs.iter().zip(&packed) {
            let solo = solo_engine.solve(req);
            match (slot, solo) {
                (Some(Ok(p)), Ok(s)) => {
                    prop_assert_eq!(&p.selection, &s.selection);
                    prop_assert_eq!(p.cost, s.cost);
                    prop_assert_eq!(p.reads, s.reads);
                    prop_assert_eq!(p.qubits_used, s.qubits_used);
                    prop_assert_eq!(p.device_time_us, s.device_time_us);
                    prop_assert!(p.packed_tenants >= 2);
                    prop_assert_eq!(s.packed_tenants, 0);
                }
                // A packed slot the engine returned to the solo path (placer
                // decline, tenant device fault) imposes nothing — but a
                // tenant must never be answered packed when solo rejects it.
                (None, _) => {}
                (Some(Ok(_)), Err(e)) => {
                    return Err(TestCaseError::fail(format!(
                        "packed answered what solo rejects: {e}"
                    )));
                }
                (Some(Err(_)), _) => {
                    // Per-tenant gate rejection: inert chaos never corrupts,
                    // so the gate must have passed.
                    return Err(TestCaseError::fail(
                        "gate rejected a clean packed tenant".to_string(),
                    ));
                }
            }
        }
    }

    /// The packed/solo split is exhaustive and non-overlapping: every
    /// request is answered exactly once whether packing is on or off, and
    /// identical batches produce identical packings (placer determinism at
    /// the engine level).
    #[test]
    fn packing_is_deterministic_across_identical_batches(
        gen_seed in 0u64..4096,
        tenants in 2usize..=6,
    ) {
        let reqs: Vec<SolveRequest> = (0..tenants as u64)
            .map(|i| SolveRequest::new(random_problem(gen_seed + 17 * i), gen_seed + i))
            .collect();
        let refs: Vec<&SolveRequest> = reqs.iter().collect();
        let a = engine(true, 2, 0.0).solve_packed(&refs);
        let b = engine(true, 2, 0.0).solve_packed(&refs);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (None, None) => {}
                (Some(Ok(p)), Some(Ok(q))) => {
                    prop_assert_eq!(&p.selection, &q.selection);
                    prop_assert_eq!(p.cost, q.cost);
                    prop_assert_eq!(p.packed_tenants, q.packed_tenants);
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "identical batches packed differently: {other:?}"
                    )));
                }
            }
        }
    }
}
