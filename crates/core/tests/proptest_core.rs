//! Property-based tests of the core data structures and the Section 4/6
//! invariants: QUBO/Ising equivalence, delta evaluation, and Theorem 1
//! (the logical mapping's optimum is the MQO optimum).

use mqo_core::ids::{PlanId, VarId};
use mqo_core::ising::{bits_to_spins, Ising};
use mqo_core::logical::LogicalMapping;
use mqo_core::problem::{MqoProblem, ProblemBuilder};
use mqo_core::qubo::Qubo;
use mqo_core::solution::{CostEvaluator, Selection};
use proptest::prelude::*;

/// Strategy: a random QUBO over `n ≤ 8` variables with integer-ish weights.
fn arb_qubo() -> impl Strategy<Value = Qubo> {
    (2usize..=8).prop_flat_map(|n| {
        let linear = proptest::collection::vec(-8.0f64..8.0, n);
        let quad = proptest::collection::vec(((0..n, 0..n), -6.0f64..6.0), 0..=n * 2);
        (Just(n), linear, quad).prop_map(|(n, linear, quad)| {
            let mut b = Qubo::builder(n);
            for (i, w) in linear.into_iter().enumerate() {
                b.add_linear(VarId::new(i), w);
            }
            for ((i, j), w) in quad {
                if i != j {
                    b.add_quadratic(VarId::new(i), VarId::new(j), w);
                }
            }
            b.build()
        })
    })
}

/// Strategy: a random MQO instance with 2–5 queries of 2–3 plans.
fn arb_problem() -> impl Strategy<Value = MqoProblem> {
    let queries = proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 2..=3), 2..=5);
    (
        queries,
        proptest::collection::vec((0usize..100, 0usize..100, 0.5f64..5.0), 0..=8),
    )
        .prop_map(|(costs, savings)| {
            let mut b: ProblemBuilder = MqoProblem::builder();
            for q in &costs {
                b.add_query(q);
            }
            let total = b.num_plans();
            for (a, bb, s) in savings {
                let _ = b.add_saving(PlanId::new(a % total), PlanId::new(bb % total), s);
            }
            b.build().expect("valid instance")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QUBO and its Ising image agree on every assignment.
    #[test]
    fn qubo_ising_equivalence(qubo in arb_qubo()) {
        let ising = Ising::from_qubo(&qubo);
        let n = qubo.num_vars();
        for mask in 0u32..(1 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let s = bits_to_spins(&x);
            prop_assert!((qubo.energy(&x) - ising.energy(&s)).abs() < 1e-9);
        }
    }

    /// Ising → QUBO → evaluation round-trips with the reported residual.
    #[test]
    fn ising_round_trip(qubo in arb_qubo()) {
        let ising = Ising::from_qubo(&qubo);
        let (q2, residual) = ising.to_qubo();
        let n = qubo.num_vars();
        for mask in 0u32..(1 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            prop_assert!((qubo.energy(&x) - (q2.energy(&x) + residual)).abs() < 1e-9);
        }
    }

    /// Flip deltas equal energy differences at every point.
    #[test]
    fn flip_delta_is_exact(qubo in arb_qubo(), mask in 0u32..256) {
        let n = qubo.num_vars();
        let x: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        for i in 0..n {
            let mut y = x.clone();
            y[i] = !y[i];
            let expect = qubo.energy(&y) - qubo.energy(&x);
            prop_assert!((qubo.flip_delta(&x, VarId::new(i)) - expect).abs() < 1e-9);
        }
    }

    /// Theorem 1: the QUBO optimum decodes to a valid selection whose cost
    /// is the brute-force MQO optimum, and energy = cost + offset.
    #[test]
    fn theorem_1_logical_mapping_is_correct(problem in arb_problem()) {
        let mapping = LogicalMapping::with_default_epsilon(&problem);
        let (x, energy) = mapping.qubo().brute_force_minimum();
        let selection = mapping.decode_strict(&x).expect("optimum must be valid");
        problem.validate_selection(&selection).expect("structurally valid");
        let cost = problem.selection_cost(&selection);
        let (_, optimum) = problem.brute_force_optimum();
        prop_assert!((cost - optimum).abs() < 1e-9, "cost {cost} vs optimum {optimum}");
        prop_assert!((energy - (cost + mapping.energy_offset())).abs() < 1e-9);
    }

    /// Lemmas 1 & 2: every invalid assignment has strictly higher energy
    /// than the optimal valid one.
    #[test]
    fn lemmas_invalid_assignments_lose(problem in arb_problem()) {
        let mapping = LogicalMapping::with_default_epsilon(&problem);
        let qubo = mapping.qubo();
        let (_, best) = qubo.brute_force_minimum();
        let n = qubo.num_vars();
        prop_assume!(n <= 12);
        for mask in 0u32..(1 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if mapping.decode_strict(&x).is_err() {
                prop_assert!(qubo.energy(&x) > best + 1e-9);
            }
        }
    }

    /// Encode/decode are mutually inverse on valid selections.
    #[test]
    fn encode_decode_round_trip(problem in arb_problem(), pick in proptest::collection::vec(0usize..3, 5)) {
        let selection = Selection::new(
            problem
                .queries()
                .enumerate()
                .map(|(i, q)| {
                    let k = pick[i % pick.len()] % problem.num_plans_of(q);
                    problem.plans_of(q).nth(k).unwrap()
                })
                .collect(),
        );
        let mapping = LogicalMapping::with_default_epsilon(&problem);
        let x = mapping.encode(&selection);
        prop_assert_eq!(mapping.decode_strict(&x).unwrap(), selection);
    }

    /// The incremental cost evaluator never drifts from full evaluation
    /// under arbitrary move sequences.
    #[test]
    fn cost_evaluator_never_drifts(problem in arb_problem(), moves in proptest::collection::vec((0usize..5, 0usize..3), 1..20)) {
        let initial = Selection::new(
            problem.queries().map(|q| problem.plans_of(q).next().unwrap()).collect(),
        );
        let mut eval = CostEvaluator::new(&problem, initial);
        for (qi, pi) in moves {
            let q = mqo_core::ids::QueryId::new(qi % problem.num_queries());
            let p = problem.plans_of(q).nth(pi % problem.num_plans_of(q)).unwrap();
            eval.apply(q, p);
            let full = problem.selection_cost(eval.selection());
            prop_assert!((eval.cost() - full).abs() < 1e-9);
        }
    }

    /// Serde round-trips preserve problems exactly.
    #[test]
    fn problem_serde_round_trip(problem in arb_problem()) {
        let json = serde_json::to_string(&problem).unwrap();
        let back: MqoProblem = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(problem, back);
    }
}
