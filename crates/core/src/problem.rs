//! The formal MQO problem model of Section 3 of the paper.
//!
//! An instance consists of
//!
//! * a set `Q` of queries,
//! * for each query `q` a non-empty set `P_q` of alternative plans with
//!   execution costs `c_p ≥ 0`,
//! * pairwise cost savings `s_{p1,p2} > 0` between plans of *different*
//!   queries that can share intermediate results.
//!
//! A solution selects exactly one plan per query; its accumulated execution
//! cost is `C(Pe) = Σ_{p∈Pe} c_p − Σ_{{p1,p2}⊆Pe} s_{p1,p2}`. Results that are
//! optional to generate are modelled, as in the paper, by a query whose plan
//! set contains a zero-cost "do not generate" plan.
//!
//! Plans are numbered globally and plans of one query occupy a contiguous id
//! range, which lets the hot evaluation paths run on flat arrays.

use crate::error::CoreError;
use crate::ids::{PlanId, QueryId};
use crate::solution::Selection;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An immutable multiple-query-optimization problem instance.
///
/// Construct via [`MqoProblem::builder`]. The structure is validated once at
/// build time; afterwards all accessors are infallible and cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "ProblemSpec", into = "ProblemSpec")]
pub struct MqoProblem {
    /// `plan_range[q] = (first, last+1)` — global plan ids of query `q`.
    plan_range: Vec<(u32, u32)>,
    /// Execution cost `c_p` per global plan id.
    plan_cost: Vec<f64>,
    /// Owning query per global plan id.
    plan_query: Vec<QueryId>,
    /// Savings triplets `(p1, p2, s)` with `p1 < p2`, sorted, duplicates
    /// merged by summation (several shared results between the same plan pair
    /// accumulate, matching the paper's pairwise-connection convention).
    savings: Vec<(PlanId, PlanId, f64)>,
    /// CSR offsets into `adj_entries`, one slice per plan.
    adj_offsets: Vec<u32>,
    /// Symmetric savings adjacency: for each plan, its sharing partners.
    adj_entries: Vec<(PlanId, f64)>,
}

impl MqoProblem {
    /// Starts building a new instance.
    pub fn builder() -> ProblemBuilder {
        ProblemBuilder::default()
    }

    /// Number of queries `|Q|`.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.plan_range.len()
    }

    /// Total number of plans `|P|` across all queries.
    #[inline]
    pub fn num_plans(&self) -> usize {
        self.plan_cost.len()
    }

    /// Number of distinct sharing pairs `(p1, p2)` with `s_{p1,p2} > 0`.
    #[inline]
    pub fn num_savings(&self) -> usize {
        self.savings.len()
    }

    /// Iterator over all query ids.
    pub fn queries(&self) -> impl ExactSizeIterator<Item = QueryId> {
        (0..self.plan_range.len() as u32).map(QueryId)
    }

    /// Iterator over all global plan ids.
    pub fn plans(&self) -> impl ExactSizeIterator<Item = PlanId> {
        (0..self.plan_cost.len() as u32).map(PlanId)
    }

    /// The plans of query `q` as an iterator over global plan ids.
    #[inline]
    pub fn plans_of(&self, q: QueryId) -> impl ExactSizeIterator<Item = PlanId> {
        let (a, b) = self.plan_range[q.index()];
        (a..b).map(PlanId)
    }

    /// Number of alternative plans of query `q`.
    #[inline]
    pub fn num_plans_of(&self, q: QueryId) -> usize {
        let (a, b) = self.plan_range[q.index()];
        (b - a) as usize
    }

    /// Execution cost `c_p` of a plan.
    #[inline]
    pub fn plan_cost(&self, p: PlanId) -> f64 {
        self.plan_cost[p.index()]
    }

    /// The query a plan belongs to.
    #[inline]
    pub fn query_of(&self, p: PlanId) -> QueryId {
        self.plan_query[p.index()]
    }

    /// All savings triplets `(p1, p2, s)` with `p1 < p2`.
    #[inline]
    pub fn savings(&self) -> &[(PlanId, PlanId, f64)] {
        &self.savings
    }

    /// The sharing partners of plan `p`: pairs `(p2, s_{p,p2})`.
    #[inline]
    pub fn savings_of(&self, p: PlanId) -> &[(PlanId, f64)] {
        let lo = self.adj_offsets[p.index()] as usize;
        let hi = self.adj_offsets[p.index() + 1] as usize;
        &self.adj_entries[lo..hi]
    }

    /// The saving between two specific plans, or 0 when they share nothing.
    pub fn saving_between(&self, p1: PlanId, p2: PlanId) -> f64 {
        self.savings_of(p1)
            .iter()
            .find(|(p, _)| *p == p2)
            .map_or(0.0, |(_, s)| *s)
    }

    /// `max_{p∈P} c_p` — used to derive the logical-mapping weight `wL`.
    pub fn max_plan_cost(&self) -> f64 {
        self.plan_cost.iter().copied().fold(0.0, f64::max)
    }

    /// `max_{p1∈P} Σ_{p2∈P} s_{p1,p2}` — used to derive `wM`.
    pub fn max_savings_sum(&self) -> f64 {
        self.plans()
            .map(|p| self.savings_of(p).iter().map(|(_, s)| s).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Accumulated execution cost `C(Pe)` of an arbitrary plan set (not
    /// necessarily a valid solution): `Σ c_p − Σ s_{p1,p2}` over selected
    /// pairs.
    ///
    /// Runs in `O(|set| + Σ deg(p))`. `set` may be in any order; duplicate
    /// plans are not allowed (debug-asserted).
    pub fn plan_set_cost(&self, set: &[PlanId]) -> f64 {
        let mut selected = vec![false; self.num_plans()];
        let mut cost = 0.0;
        for &p in set {
            debug_assert!(!selected[p.index()], "duplicate plan in set");
            selected[p.index()] = true;
            cost += self.plan_cost(p);
        }
        // Each unordered pair is visited twice through the symmetric
        // adjacency, hence the factor 1/2.
        let mut shared = 0.0;
        for &p in set {
            for &(p2, s) in self.savings_of(p) {
                if selected[p2.index()] {
                    shared += s;
                }
            }
        }
        cost - shared / 2.0
    }

    /// Accumulated execution cost of a valid solution.
    pub fn selection_cost(&self, selection: &Selection) -> f64 {
        self.plan_set_cost(selection.plans())
    }

    /// Checks that a selection is structurally compatible with this problem:
    /// one plan per query, each belonging to the right query.
    pub fn validate_selection(&self, selection: &Selection) -> Result<(), CoreError> {
        if selection.num_queries() != self.num_queries() {
            return Err(CoreError::AssignmentLength {
                expected: self.num_queries(),
                actual: selection.num_queries(),
            });
        }
        for q in self.queries() {
            let p = selection.plan_of(q);
            if p.index() >= self.num_plans() {
                return Err(CoreError::UnknownPlan(p));
            }
            if self.query_of(p) != q {
                return Err(CoreError::MultiplePlansSelected(q));
            }
        }
        Ok(())
    }

    /// Exhaustively enumerates all valid solutions and returns a cheapest one
    /// together with its cost. Intended for tests and tiny instances: the
    /// search space is `Π_q |P_q|`.
    pub fn brute_force_optimum(&self) -> (Selection, f64) {
        assert!(
            self.num_queries() <= 24,
            "brute force is limited to small instances"
        );
        let mut current: Vec<PlanId> = self
            .queries()
            .map(|q| self.plans_of(q).next().expect("non-empty query"))
            .collect();
        let mut best = current.clone();
        let mut best_cost = self.plan_set_cost(&current);
        self.enumerate(0, &mut current, &mut best, &mut best_cost);
        (Selection::new(best), best_cost)
    }

    fn enumerate(
        &self,
        q: usize,
        current: &mut Vec<PlanId>,
        best: &mut Vec<PlanId>,
        best_cost: &mut f64,
    ) {
        if q == self.num_queries() {
            let cost = self.plan_set_cost(current);
            if cost < *best_cost {
                *best_cost = cost;
                best.clone_from(current);
            }
            return;
        }
        for p in self.plans_of(QueryId::new(q)) {
            current[q] = p;
            self.enumerate(q + 1, current, best, best_cost);
        }
    }
}

/// Incremental builder for [`MqoProblem`].
#[derive(Debug, Default, Clone)]
pub struct ProblemBuilder {
    plan_range: Vec<(u32, u32)>,
    plan_cost: Vec<f64>,
    plan_query: Vec<QueryId>,
    savings: BTreeMap<(PlanId, PlanId), f64>,
}

impl ProblemBuilder {
    /// Adds a query with one plan per entry of `costs`; returns its id.
    pub fn add_query(&mut self, costs: &[f64]) -> QueryId {
        let q = QueryId::new(self.plan_range.len());
        let first = self.plan_cost.len() as u32;
        for &c in costs {
            self.plan_cost.push(c);
            self.plan_query.push(q);
        }
        self.plan_range.push((first, self.plan_cost.len() as u32));
        q
    }

    /// Global plan ids of a previously added query.
    pub fn plans_of(&self, q: QueryId) -> Vec<PlanId> {
        let (a, b) = self.plan_range[q.index()];
        (a..b).map(PlanId).collect()
    }

    /// Number of plans added so far.
    pub fn num_plans(&self) -> usize {
        self.plan_cost.len()
    }

    /// Declares that plans `p1` and `p2` can share intermediate results worth
    /// `s` cost units. Savings between the same pair accumulate.
    pub fn add_saving(&mut self, p1: PlanId, p2: PlanId, s: f64) -> Result<(), CoreError> {
        if p1 == p2 {
            return Err(CoreError::SelfSaving(p1));
        }
        for &p in &[p1, p2] {
            if p.index() >= self.plan_cost.len() {
                return Err(CoreError::UnknownPlan(p));
            }
        }
        if self.plan_query[p1.index()] == self.plan_query[p2.index()] {
            return Err(CoreError::SavingWithinQuery(p1, p2));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(CoreError::NonPositiveSaving(p1, p2, s));
        }
        let key = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        *self.savings.entry(key).or_insert(0.0) += s;
        Ok(())
    }

    /// Validates and freezes the instance.
    pub fn build(self) -> Result<MqoProblem, CoreError> {
        for (q, &(a, b)) in self.plan_range.iter().enumerate() {
            if a == b {
                return Err(CoreError::EmptyQuery(QueryId::new(q)));
            }
        }
        for (p, &c) in self.plan_cost.iter().enumerate() {
            if !c.is_finite() || c < 0.0 {
                return Err(CoreError::InvalidCost(PlanId::new(p), c));
            }
        }
        let savings: Vec<(PlanId, PlanId, f64)> = self
            .savings
            .into_iter()
            .map(|((p1, p2), s)| (p1, p2, s))
            .collect();

        // Build the symmetric CSR adjacency.
        let n = self.plan_cost.len();
        let mut degree = vec![0u32; n];
        for &(p1, p2, _) in &savings {
            degree[p1.index()] += 1;
            degree[p2.index()] += 1;
        }
        let mut adj_offsets = vec![0u32; n + 1];
        for i in 0..n {
            adj_offsets[i + 1] = adj_offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let mut adj_entries = vec![(PlanId(0), 0.0); adj_offsets[n] as usize];
        for &(p1, p2, s) in &savings {
            adj_entries[cursor[p1.index()] as usize] = (p2, s);
            cursor[p1.index()] += 1;
            adj_entries[cursor[p2.index()] as usize] = (p1, s);
            cursor[p2.index()] += 1;
        }

        Ok(MqoProblem {
            plan_range: self.plan_range,
            plan_cost: self.plan_cost,
            plan_query: self.plan_query,
            savings,
            adj_offsets,
            adj_entries,
        })
    }
}

/// Serialisable mirror of [`MqoProblem`]: per-query plan costs plus savings
/// triplets. Deserialisation re-runs full builder validation, so hand-edited
/// files cannot produce inconsistent internal state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// `queries[q]` = execution costs of the plans of query `q`.
    pub queries: Vec<Vec<f64>>,
    /// Savings triplets over global plan ids.
    pub savings: Vec<(u32, u32, f64)>,
}

impl From<MqoProblem> for ProblemSpec {
    fn from(p: MqoProblem) -> Self {
        let queries = p
            .queries()
            .map(|q| p.plans_of(q).map(|pl| p.plan_cost(pl)).collect())
            .collect();
        let savings = p.savings.iter().map(|&(a, b, s)| (a.0, b.0, s)).collect();
        ProblemSpec { queries, savings }
    }
}

impl TryFrom<ProblemSpec> for MqoProblem {
    type Error = CoreError;

    fn try_from(spec: ProblemSpec) -> Result<Self, Self::Error> {
        let mut b = MqoProblem::builder();
        for costs in &spec.queries {
            b.add_query(costs);
        }
        for (p1, p2, s) in spec.savings {
            b.add_saving(PlanId(p1), PlanId(p2), s)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_problem() -> MqoProblem {
        // Example 1 from the paper.
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let p2 = b.plans_of(q1)[1];
        let p3 = b.plans_of(q2)[0];
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_contiguous_global_plan_ids() {
        let p = example_problem();
        assert_eq!(p.num_queries(), 2);
        assert_eq!(p.num_plans(), 4);
        let q0: Vec<_> = p.plans_of(QueryId(0)).collect();
        let q1: Vec<_> = p.plans_of(QueryId(1)).collect();
        assert_eq!(q0, vec![PlanId(0), PlanId(1)]);
        assert_eq!(q1, vec![PlanId(2), PlanId(3)]);
        assert_eq!(p.query_of(PlanId(1)), QueryId(0));
        assert_eq!(p.query_of(PlanId(2)), QueryId(1));
    }

    #[test]
    fn plan_set_cost_matches_paper_example() {
        let p = example_problem();
        // Executing p2 and p3: 4 + 3 − 5 = 2.
        assert_eq!(p.plan_set_cost(&[PlanId(1), PlanId(2)]), 2.0);
        // Executing p1 and p4: 2 + 1 = 3, no sharing.
        assert_eq!(p.plan_set_cost(&[PlanId(0), PlanId(3)]), 3.0);
        // Executing p1 and p3: 2 + 3 = 5.
        assert_eq!(p.plan_set_cost(&[PlanId(0), PlanId(2)]), 5.0);
    }

    #[test]
    fn brute_force_finds_the_shared_work_optimum() {
        let p = example_problem();
        let (sel, cost) = p.brute_force_optimum();
        assert_eq!(cost, 2.0);
        assert_eq!(sel.plans(), &[PlanId(1), PlanId(2)]);
    }

    #[test]
    fn savings_accumulate_over_duplicate_pairs() {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[1.0]);
        let q2 = b.add_query(&[1.0]);
        let a = b.plans_of(q1)[0];
        let c = b.plans_of(q2)[0];
        b.add_saving(a, c, 0.5).unwrap();
        b.add_saving(c, a, 0.25).unwrap(); // reversed order merges too
        let p = b.build().unwrap();
        assert_eq!(p.num_savings(), 1);
        assert_eq!(p.saving_between(a, c), 0.75);
        assert_eq!(p.saving_between(c, a), 0.75);
    }

    #[test]
    fn same_query_savings_are_rejected() {
        let mut b = MqoProblem::builder();
        let q = b.add_query(&[1.0, 2.0]);
        let plans = b.plans_of(q);
        let err = b.add_saving(plans[0], plans[1], 1.0).unwrap_err();
        assert_eq!(err, CoreError::SavingWithinQuery(plans[0], plans[1]));
    }

    #[test]
    fn self_savings_and_bad_values_are_rejected() {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[1.0]);
        let q2 = b.add_query(&[1.0]);
        let a = b.plans_of(q1)[0];
        let c = b.plans_of(q2)[0];
        assert_eq!(
            b.add_saving(a, a, 1.0).unwrap_err(),
            CoreError::SelfSaving(a)
        );
        assert!(matches!(
            b.add_saving(a, c, 0.0).unwrap_err(),
            CoreError::NonPositiveSaving(..)
        ));
        assert!(matches!(
            b.add_saving(a, c, f64::NAN).unwrap_err(),
            CoreError::NonPositiveSaving(..)
        ));
        assert!(matches!(
            b.add_saving(a, PlanId(99), 1.0).unwrap_err(),
            CoreError::UnknownPlan(_)
        ));
    }

    #[test]
    fn empty_queries_and_invalid_costs_are_rejected() {
        let mut b = MqoProblem::builder();
        b.add_query(&[]);
        assert_eq!(b.build().unwrap_err(), CoreError::EmptyQuery(QueryId(0)));

        let mut b = MqoProblem::builder();
        b.add_query(&[-1.0]);
        assert!(matches!(b.build().unwrap_err(), CoreError::InvalidCost(..)));
    }

    #[test]
    fn max_cost_and_max_savings_sum() {
        let p = example_problem();
        assert_eq!(p.max_plan_cost(), 4.0);
        assert_eq!(p.max_savings_sum(), 5.0);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let p = example_problem();
        assert_eq!(p.savings_of(PlanId(1)), &[(PlanId(2), 5.0)]);
        assert_eq!(p.savings_of(PlanId(2)), &[(PlanId(1), 5.0)]);
        assert!(p.savings_of(PlanId(0)).is_empty());
        assert!(p.savings_of(PlanId(3)).is_empty());
    }

    #[test]
    fn serde_round_trip_preserves_the_instance() {
        let p = example_problem();
        let json = serde_json::to_string(&p).unwrap();
        let back: MqoProblem = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn selection_validation_catches_wrong_query() {
        let p = example_problem();
        // PlanId(2) belongs to query 1, not query 0.
        let bad = Selection::new(vec![PlanId(2), PlanId(3)]);
        assert!(p.validate_selection(&bad).is_err());
        let good = Selection::new(vec![PlanId(0), PlanId(3)]);
        assert!(p.validate_selection(&good).is_ok());
    }
}
