//! Solutions to MQO problems and incremental cost evaluation.

use crate::ids::{PlanId, QueryId};
use crate::problem::MqoProblem;
use serde::{Deserialize, Serialize};

/// A valid-by-shape solution: exactly one plan per query, indexed by query.
///
/// `Selection` only guarantees the *shape* (one entry per query); whether each
/// plan actually belongs to its query is checked by
/// [`MqoProblem::validate_selection`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Selection {
    plan_of_query: Vec<PlanId>,
}

impl Selection {
    /// Wraps a per-query plan vector (`plan_of_query[q]` = chosen plan).
    pub fn new(plan_of_query: Vec<PlanId>) -> Self {
        Selection { plan_of_query }
    }

    /// Number of queries this selection covers.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.plan_of_query.len()
    }

    /// The plan chosen for query `q`.
    #[inline]
    pub fn plan_of(&self, q: QueryId) -> PlanId {
        self.plan_of_query[q.index()]
    }

    /// The chosen plans, indexed by query.
    #[inline]
    pub fn plans(&self) -> &[PlanId] {
        &self.plan_of_query
    }

    /// Replaces the plan of one query.
    #[inline]
    pub fn set_plan(&mut self, q: QueryId, p: PlanId) {
        self.plan_of_query[q.index()] = p;
    }
}

/// Maintains the cost of a selection under single-query plan swaps in
/// `O(deg)` per move instead of re-evaluating the whole instance.
///
/// This is the hot path of every anytime heuristic (hill climbing, genetic
/// local evaluation), so it works on flat arrays: a selected-plan bitmap plus
/// the problem's CSR savings adjacency.
#[derive(Debug, Clone)]
pub struct CostEvaluator<'a> {
    problem: &'a MqoProblem,
    selection: Selection,
    selected: Vec<bool>,
    cost: f64,
}

impl<'a> CostEvaluator<'a> {
    /// Initialises the evaluator with a starting selection.
    pub fn new(problem: &'a MqoProblem, selection: Selection) -> Self {
        debug_assert!(problem.validate_selection(&selection).is_ok());
        let mut selected = vec![false; problem.num_plans()];
        for &p in selection.plans() {
            selected[p.index()] = true;
        }
        let cost = problem.selection_cost(&selection);
        CostEvaluator {
            problem,
            selection,
            selected,
            cost,
        }
    }

    /// Current accumulated execution cost `C(Pe)`.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Current selection.
    #[inline]
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Cost change if query `q` switched from its current plan to `p`,
    /// without applying the move. Returns 0 for a no-op move.
    pub fn delta(&self, q: QueryId, p: PlanId) -> f64 {
        let old = self.selection.plan_of(q);
        if old == p {
            return 0.0;
        }
        debug_assert_eq!(self.problem.query_of(p), q);
        let mut delta = self.problem.plan_cost(p) - self.problem.plan_cost(old);
        // Savings lost by dropping `old`. `old`'s partners cannot include `p`
        // (same-query savings are rejected at build time), so no correction
        // term is needed.
        for &(p2, s) in self.problem.savings_of(old) {
            if self.selected[p2.index()] {
                delta += s;
            }
        }
        // Savings gained by adopting `p`.
        for &(p2, s) in self.problem.savings_of(p) {
            if self.selected[p2.index()] && p2 != old {
                delta -= s;
            }
        }
        delta
    }

    /// Applies the move `q → p` and returns the cost change.
    pub fn apply(&mut self, q: QueryId, p: PlanId) -> f64 {
        let delta = self.delta(q, p);
        let old = self.selection.plan_of(q);
        if old != p {
            self.selected[old.index()] = false;
            self.selected[p.index()] = true;
            self.selection.set_plan(q, p);
            self.cost += delta;
        }
        delta
    }

    /// Replaces the whole selection (full re-evaluation).
    pub fn reset(&mut self, selection: Selection) {
        self.selected.fill(false);
        for &p in selection.plans() {
            self.selected[p.index()] = true;
        }
        self.cost = self.problem.selection_cost(&selection);
        self.selection = selection;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MqoProblem;

    /// 3 queries × 2 plans with a saving triangle across queries.
    fn triangle_problem() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q0 = b.add_query(&[2.0, 4.0]);
        let q1 = b.add_query(&[3.0, 1.0]);
        let q2 = b.add_query(&[2.5, 2.5]);
        let (a, _b0) = (b.plans_of(q0)[0], b.plans_of(q0)[1]);
        let (c, d) = (b.plans_of(q1)[0], b.plans_of(q1)[1]);
        let (e, f) = (b.plans_of(q2)[0], b.plans_of(q2)[1]);
        b.add_saving(a, c, 1.5).unwrap();
        b.add_saving(c, e, 2.0).unwrap();
        b.add_saving(a, e, 0.5).unwrap();
        b.add_saving(d, f, 0.25).unwrap();
        b.build().unwrap()
    }

    fn initial(p: &MqoProblem) -> Selection {
        Selection::new(p.queries().map(|q| p.plans_of(q).next().unwrap()).collect())
    }

    #[test]
    fn evaluator_initial_cost_matches_full_evaluation() {
        let p = triangle_problem();
        let sel = initial(&p);
        let ev = CostEvaluator::new(&p, sel.clone());
        assert_eq!(ev.cost(), p.selection_cost(&sel));
        // a + c + e − (1.5 + 2.0 + 0.5) = 2 + 3 + 2.5 − 4 = 3.5
        assert_eq!(ev.cost(), 3.5);
    }

    #[test]
    fn delta_matches_full_reevaluation_for_every_single_swap() {
        let p = triangle_problem();
        let sel = initial(&p);
        let ev = CostEvaluator::new(&p, sel.clone());
        for q in p.queries() {
            for cand in p.plans_of(q) {
                let mut swapped = sel.clone();
                swapped.set_plan(q, cand);
                let full = p.selection_cost(&swapped) - p.selection_cost(&sel);
                let fast = ev.delta(q, cand);
                assert!(
                    (full - fast).abs() < 1e-9,
                    "delta mismatch for {q} -> {cand}: {full} vs {fast}"
                );
            }
        }
    }

    #[test]
    fn apply_keeps_running_cost_consistent_over_a_move_sequence() {
        let p = triangle_problem();
        let mut ev = CostEvaluator::new(&p, initial(&p));
        let moves = [
            (QueryId(1), PlanId(3)),
            (QueryId(0), PlanId(1)),
            (QueryId(2), PlanId(5)),
            (QueryId(1), PlanId(2)),
            (QueryId(0), PlanId(0)),
        ];
        for (q, pl) in moves {
            ev.apply(q, pl);
            let expect = p.selection_cost(ev.selection());
            assert!(
                (ev.cost() - expect).abs() < 1e-9,
                "running cost drifted: {} vs {}",
                ev.cost(),
                expect
            );
        }
    }

    #[test]
    fn noop_move_has_zero_delta_and_changes_nothing() {
        let p = triangle_problem();
        let mut ev = CostEvaluator::new(&p, initial(&p));
        let before = ev.cost();
        assert_eq!(ev.apply(QueryId(0), PlanId(0)), 0.0);
        assert_eq!(ev.cost(), before);
    }

    #[test]
    fn reset_replaces_selection_and_cost() {
        let p = triangle_problem();
        let mut ev = CostEvaluator::new(&p, initial(&p));
        let other = Selection::new(vec![PlanId(1), PlanId(3), PlanId(5)]);
        ev.reset(other.clone());
        assert_eq!(ev.selection(), &other);
        assert_eq!(ev.cost(), p.selection_cost(&other));
        // 4 + 1 + 2.5 − 0.25 (d,f saving) = 7.25
        assert_eq!(ev.cost(), 7.25);
    }
}
