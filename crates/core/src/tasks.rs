//! The task-based MQO model of Sellis (1988) and its reduction to this
//! crate's pairwise-savings model — footnote 4 of the paper:
//!
//! > "If each query plan is modeled by a set of tasks then we make in our
//! > model the execution cost of the plan equal to the sum of the execution
//! > costs of all tasks and introduce one extra query for each of the tasks
//! > with an execution cost equal to the task cost and a cost savings link
//! > between task and plan whose value equals the task execution cost
//! > again."
//!
//! In the task model, executing a set of plans costs the sum of the costs of
//! the *distinct* tasks they touch (shared tasks are computed once). The
//! reduction introduces per-task helper queries with a free "skip" plan, so
//! a task's cost is refunded once per plan that uses it and paid exactly
//! once iff some selected plan uses it. [`TaskModel::to_mqo`] performs the
//! reduction; the tests prove cost equivalence by exhaustion.

use crate::error::CoreError;
use crate::ids::{PlanId, QueryId};
use crate::problem::MqoProblem;
use crate::solution::Selection;
use serde::{Deserialize, Serialize};

/// Identifies a task in a [`TaskModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An MQO instance in the task-based formulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskModel {
    /// Execution cost per task.
    pub task_costs: Vec<f64>,
    /// `plans[q]` = the alternative plans of query `q`, each a set of tasks.
    pub queries: Vec<Vec<Vec<TaskId>>>,
}

/// Result of the reduction: the pairwise-savings problem plus the index
/// mapping needed to interpret its solutions.
#[derive(Debug, Clone)]
pub struct TaskReduction {
    /// The reduced problem: original queries first (same order), then one
    /// helper query per task with plans `[generate (cost c_t), skip (0)]`.
    pub problem: MqoProblem,
    /// Number of original (non-helper) queries.
    pub num_original_queries: usize,
}

impl TaskModel {
    /// True execution cost of a plan choice under task semantics: each
    /// distinct task of the selected plans is paid once.
    ///
    /// `choice[q]` is the index of the chosen plan within query `q`.
    pub fn execution_cost(&self, choice: &[usize]) -> f64 {
        assert_eq!(choice.len(), self.queries.len());
        let mut used = vec![false; self.task_costs.len()];
        for (q, &c) in choice.iter().enumerate() {
            for t in &self.queries[q][c] {
                used[t.index()] = true;
            }
        }
        used.iter()
            .zip(&self.task_costs)
            .filter(|(u, _)| **u)
            .map(|(_, c)| c)
            .sum()
    }

    /// Reduces the task model to the pairwise-savings model (footnote 4).
    pub fn to_mqo(&self) -> Result<TaskReduction, CoreError> {
        let mut b = MqoProblem::builder();
        // Original queries: plan cost = Σ task costs.
        let mut plan_ids: Vec<Vec<PlanId>> = Vec::with_capacity(self.queries.len());
        for plans in &self.queries {
            let costs: Vec<f64> = plans
                .iter()
                .map(|tasks| tasks.iter().map(|t| self.task_costs[t.index()]).sum())
                .collect();
            let q = b.add_query(&costs);
            plan_ids.push(b.plans_of(q));
        }
        // Helper query per task: [generate (cost c_t), skip (0)].
        let mut generate_plan: Vec<PlanId> = Vec::with_capacity(self.task_costs.len());
        for &c in &self.task_costs {
            let q = b.add_query(&[c, 0.0]);
            generate_plan.push(b.plans_of(q)[0]);
        }
        // Savings: task ↔ every plan using it, worth the task cost.
        for (q, plans) in self.queries.iter().enumerate() {
            for (p, tasks) in plans.iter().enumerate() {
                for t in tasks {
                    let c = self.task_costs[t.index()];
                    if c > 0.0 {
                        b.add_saving(plan_ids[q][p], generate_plan[t.index()], c)?;
                    }
                }
            }
        }
        Ok(TaskReduction {
            problem: b.build()?,
            num_original_queries: self.queries.len(),
        })
    }
}

impl TaskReduction {
    /// Projects a solution of the reduced problem onto the original
    /// queries, returning per-query plan indices.
    pub fn project(&self, selection: &Selection) -> Vec<usize> {
        (0..self.num_original_queries)
            .map(|q| {
                let qid = QueryId::new(q);
                let chosen = selection.plan_of(qid);
                let first = self.problem.plans_of(qid).next().expect("non-empty query");
                chosen.index() - first.index()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    /// Two queries sharing task 1; costs 4, 3, 2.
    fn model() -> TaskModel {
        TaskModel {
            task_costs: vec![4.0, 3.0, 2.0],
            queries: vec![
                vec![vec![t(0)], vec![t(1), t(2)]],
                vec![vec![t(1)], vec![t(2)]],
            ],
        }
    }

    #[test]
    fn execution_cost_counts_distinct_tasks_once() {
        let m = model();
        // q0 plan 1 = {t1, t2}, q1 plan 0 = {t1}: tasks {1, 2} → 3 + 2 = 5.
        assert_eq!(m.execution_cost(&[1, 0]), 5.0);
        // q0 plan 0 = {t0}, q1 plan 1 = {t2}: 4 + 2 = 6.
        assert_eq!(m.execution_cost(&[0, 1]), 6.0);
    }

    #[test]
    fn reduction_preserves_optimal_cost_and_choice() {
        let m = model();
        // Exhaustive task-model optimum.
        let mut best = f64::INFINITY;
        let mut best_choice = vec![0, 0];
        for a in 0..2 {
            for c in 0..2 {
                let cost = m.execution_cost(&[a, c]);
                if cost < best {
                    best = cost;
                    best_choice = vec![a, c];
                }
            }
        }
        let red = m.to_mqo().unwrap();
        let (sel, cost) = red.problem.brute_force_optimum();
        assert!(
            (cost - best).abs() < 1e-9,
            "reduced optimum {cost} vs task optimum {best}"
        );
        assert_eq!(red.project(&sel), best_choice);
    }

    #[test]
    fn every_choice_has_a_matching_reduced_solution() {
        // For each plan choice, the best reduced completion (optimal task
        // helper settings) costs exactly the task-model cost.
        let m = model();
        let red = m.to_mqo().unwrap();
        for a in 0..2usize {
            for c in 0..2usize {
                let task_cost = m.execution_cost(&[a, c]);
                // Enumerate helper settings, keep plan choice fixed.
                let mut best = f64::INFINITY;
                for mask in 0u32..8 {
                    let mut plans = Vec::new();
                    for (q, &choice) in [a, c].iter().enumerate() {
                        plans.push(red.problem.plans_of(QueryId::new(q)).nth(choice).unwrap());
                    }
                    for task in 0..3 {
                        let helper = QueryId::new(2 + task);
                        let idx = usize::from(mask & (1 << task) == 0); // 0=generate,1=skip
                        plans.push(red.problem.plans_of(helper).nth(idx).unwrap());
                    }
                    best = best.min(red.problem.plan_set_cost(&plans));
                }
                assert!(
                    (best - task_cost).abs() < 1e-9,
                    "choice ({a},{c}): reduced best {best} vs task cost {task_cost}"
                );
            }
        }
    }

    #[test]
    fn zero_cost_tasks_are_handled() {
        let m = TaskModel {
            task_costs: vec![0.0, 1.0],
            queries: vec![vec![vec![t(0), t(1)]]],
        };
        let red = m.to_mqo().unwrap();
        let (_, cost) = red.problem.brute_force_optimum();
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn empty_plans_are_free() {
        let m = TaskModel {
            task_costs: vec![5.0],
            queries: vec![vec![vec![], vec![t(0)]]],
        };
        assert_eq!(m.execution_cost(&[0]), 0.0);
        let red = m.to_mqo().unwrap();
        let (sel, cost) = red.problem.brute_force_optimum();
        assert_eq!(cost, 0.0);
        assert_eq!(red.project(&sel), vec![0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let back: TaskModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
