//! Solution-integrity verification and deterministic repair.
//!
//! The pipeline (MQO → QUBO → Chimera Ising → samples → unembed → selection)
//! has many places where a *wrong* answer can silently survive: broken chains
//! are majority-voted, control error perturbs programmed weights, and fault /
//! chaos injection deliberately corrupts state. This module is the layer that
//! re-checks every answer against the original instance:
//!
//! * [`verify_selection`] — a claimed solution is structurally feasible and
//!   its reported cost matches a from-scratch recomputation within tolerance;
//! * [`verify_decoded_sample`] — a QUBO assignment decodes to a feasible
//!   selection and its QUBO energy obeys the `energy = cost + offset`
//!   identity of the logical mapping;
//! * [`cross_check_sample`] / [`cross_check_gauge`] — a sample's Ising energy
//!   agrees with the QUBO objective through the Ising round-trip and gauge
//!   transformations;
//! * [`verify_against_bound`] — a reported cost never undercuts a proven
//!   optimum or lower bound (an impossibly *good* answer is corrupt too);
//! * [`repair_selection`] — a deterministic min-delta repair for infeasible
//!   selections, with accounting in [`RepairStats`].
//!
//! Every failure is a typed [`IntegrityError`] variant — never a panic — so
//! serving layers can turn violations into typed errors and counters.

use crate::error::CoreError;
use crate::ids::{PlanId, QueryId};
use crate::ising::{bits_to_spins, Ising};
use crate::logical::LogicalMapping;
use crate::problem::MqoProblem;
use crate::qubo::Qubo;
use crate::solution::{CostEvaluator, Selection};
use serde::{Deserialize, Serialize};

/// Default verification tolerance. Costs are recomputed in a different
/// summation order than the incremental paths that produced them, so exact
/// equality is too strict; `1e-6` relative slack is ~9 orders of magnitude
/// above accumulated f64 rounding on paper-scale instances and ~6 below any
/// real cost difference the workloads produce.
pub const DEFAULT_TOLERANCE: f64 = 1e-6;

/// Mixed absolute/relative comparison: `|a − b| ≤ tol · (1 + max(|a|, |b|))`.
/// Behaves absolutely near zero and relatively for large magnitudes; any
/// non-finite operand fails.
#[must_use]
pub fn within_tolerance(a: f64, b: f64, tol: f64) -> bool {
    a.is_finite() && b.is_finite() && (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// A typed integrity violation. Carries enough context to log and reconcile;
/// never panics out of the verification paths.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrityError {
    /// The claimed selection is not a structurally valid solution of the
    /// problem (wrong length, unknown plan, or a plan of the wrong query).
    InvalidSelection(CoreError),
    /// The reported cost is NaN or infinite.
    NonFiniteCost {
        /// The reported (non-finite) cost.
        reported: f64,
    },
    /// The reported cost disagrees with a from-scratch recomputation.
    CostMismatch {
        /// Cost the producer claimed.
        reported: f64,
        /// Cost recomputed from the problem definition.
        recomputed: f64,
        /// Tolerance the comparison used.
        tolerance: f64,
    },
    /// A QUBO assignment does not decode into a feasible selection.
    InfeasibleAssignment(CoreError),
    /// A QUBO energy disagrees with the `energy = cost + offset` identity of
    /// the logical mapping (or with a reported energy).
    EnergyMismatch {
        /// Energy the producer claimed (or the identity predicts).
        reported: f64,
        /// Energy recomputed from the QUBO.
        recomputed: f64,
        /// Tolerance the comparison used.
        tolerance: f64,
    },
    /// An Ising sample energy disagrees with the QUBO objective through the
    /// QUBO ⇄ Ising round-trip or a gauge transformation.
    CrossCheckMismatch {
        /// Energy on the QUBO side.
        qubo_energy: f64,
        /// Energy on the Ising side.
        ising_energy: f64,
        /// Tolerance the comparison used.
        tolerance: f64,
    },
    /// A reported cost undercuts a proven optimum / lower bound — an
    /// impossibly good answer, which only corruption can produce.
    BelowProvenOptimum {
        /// Cost the producer claimed.
        reported: f64,
        /// The proven optimum or lower bound it undercuts.
        bound: f64,
    },
    /// The candidate cannot be repaired (e.g. it covers the wrong number of
    /// queries, so no per-query settle exists).
    Unrepairable(CoreError),
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::InvalidSelection(e) => write!(f, "invalid selection: {e}"),
            IntegrityError::NonFiniteCost { reported } => {
                write!(f, "reported cost is non-finite ({reported})")
            }
            IntegrityError::CostMismatch {
                reported,
                recomputed,
                tolerance,
            } => write!(
                f,
                "reported cost {reported} disagrees with recomputed cost {recomputed} \
                 (tolerance {tolerance})"
            ),
            IntegrityError::InfeasibleAssignment(e) => {
                write!(f, "assignment decodes to no feasible solution: {e}")
            }
            IntegrityError::EnergyMismatch {
                reported,
                recomputed,
                tolerance,
            } => write!(
                f,
                "energy {reported} disagrees with recomputed energy {recomputed} \
                 (tolerance {tolerance})"
            ),
            IntegrityError::CrossCheckMismatch {
                qubo_energy,
                ising_energy,
                tolerance,
            } => write!(
                f,
                "QUBO energy {qubo_energy} disagrees with Ising energy {ising_energy} \
                 (tolerance {tolerance})"
            ),
            IntegrityError::BelowProvenOptimum { reported, bound } => write!(
                f,
                "reported cost {reported} undercuts the proven bound {bound}"
            ),
            IntegrityError::Unrepairable(e) => write!(f, "candidate is unrepairable: {e}"),
        }
    }
}

impl std::error::Error for IntegrityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IntegrityError::InvalidSelection(e)
            | IntegrityError::InfeasibleAssignment(e)
            | IntegrityError::Unrepairable(e) => Some(e),
            _ => None,
        }
    }
}

/// Verifies a claimed solution end to end: structural feasibility plus the
/// reported cost against a from-scratch recomputation. Returns the
/// recomputed cost on success.
pub fn verify_selection(
    problem: &MqoProblem,
    selection: &Selection,
    reported_cost: f64,
    tolerance: f64,
) -> Result<f64, IntegrityError> {
    problem
        .validate_selection(selection)
        .map_err(IntegrityError::InvalidSelection)?;
    if !reported_cost.is_finite() {
        return Err(IntegrityError::NonFiniteCost {
            reported: reported_cost,
        });
    }
    let recomputed = problem.selection_cost(selection);
    if !within_tolerance(reported_cost, recomputed, tolerance) {
        return Err(IntegrityError::CostMismatch {
            reported: reported_cost,
            recomputed,
            tolerance,
        });
    }
    Ok(recomputed)
}

/// Verifies a decoded QUBO sample: the assignment must decode strictly into
/// a feasible selection, and the QUBO energy must obey the
/// `energy(x) = cost(selection) + energy_offset()` identity of the logical
/// mapping. Returns the selection and its recomputed cost.
pub fn verify_decoded_sample(
    mapping: &LogicalMapping,
    problem: &MqoProblem,
    x: &[bool],
    tolerance: f64,
) -> Result<(Selection, f64), IntegrityError> {
    let selection = mapping
        .decode_strict(x)
        .map_err(IntegrityError::InfeasibleAssignment)?;
    let cost = problem.selection_cost(&selection);
    let energy = mapping.qubo().energy(x);
    let predicted = cost + mapping.energy_offset();
    if !within_tolerance(energy, predicted, tolerance) {
        return Err(IntegrityError::EnergyMismatch {
            reported: predicted,
            recomputed: energy,
            tolerance,
        });
    }
    Ok((selection, cost))
}

/// Cross-checks a sample through the QUBO ⇄ Ising round-trip: the Ising
/// energy of the corresponding spins must equal the QUBO objective.
pub fn cross_check_sample(qubo: &Qubo, x: &[bool], tolerance: f64) -> Result<(), IntegrityError> {
    if x.len() != qubo.num_vars() {
        return Err(IntegrityError::InfeasibleAssignment(
            CoreError::AssignmentLength {
                expected: qubo.num_vars(),
                actual: x.len(),
            },
        ));
    }
    let ising = Ising::from_qubo(qubo);
    let qubo_energy = qubo.energy(x);
    let ising_energy = ising.energy(&bits_to_spins(x));
    if !within_tolerance(qubo_energy, ising_energy, tolerance) {
        return Err(IntegrityError::CrossCheckMismatch {
            qubo_energy,
            ising_energy,
            tolerance,
        });
    }
    Ok(())
}

/// Cross-checks gauge invariance: transforming problem and spins by the same
/// sign vector must leave the energy unchanged (`E_g(g·s) = E(s)`), which is
/// the identity the device's gauge averaging relies on.
pub fn cross_check_gauge(
    ising: &Ising,
    spins: &[i8],
    signs: &[i8],
    tolerance: f64,
) -> Result<(), IntegrityError> {
    if spins.len() != ising.num_spins() || signs.len() != ising.num_spins() {
        return Err(IntegrityError::InfeasibleAssignment(
            CoreError::AssignmentLength {
                expected: ising.num_spins(),
                actual: spins.len().min(signs.len()),
            },
        ));
    }
    let gauged_problem = ising.gauge_transformed(signs);
    let gauged_spins: Vec<i8> = spins.iter().zip(signs).map(|(&s, &g)| s * g).collect();
    let original = ising.energy(spins);
    let gauged = gauged_problem.energy(&gauged_spins);
    if !within_tolerance(original, gauged, tolerance) {
        return Err(IntegrityError::CrossCheckMismatch {
            qubo_energy: original,
            ising_energy: gauged,
            tolerance,
        });
    }
    Ok(())
}

/// Checks a reported cost against a proven optimum (or lower bound): any
/// answer more than `tolerance` *below* the bound is impossible and therefore
/// corrupt. Answers above the bound are merely suboptimal, not violations.
pub fn verify_against_bound(
    reported_cost: f64,
    bound: f64,
    tolerance: f64,
) -> Result<(), IntegrityError> {
    if !reported_cost.is_finite() {
        return Err(IntegrityError::NonFiniteCost {
            reported: reported_cost,
        });
    }
    if reported_cost < bound && !within_tolerance(reported_cost, bound, tolerance) {
        return Err(IntegrityError::BelowProvenOptimum {
            reported: reported_cost,
            bound,
        });
    }
    Ok(())
}

/// Accounting of a verify-then-repair pass over many results. Serialises
/// into outcomes and bench reports; counters add across batches via
/// [`RepairStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Results that passed verification untouched.
    pub verified_clean: usize,
    /// Results that failed verification and were deterministically repaired
    /// to a verified-feasible solution.
    pub repaired: usize,
    /// Results that failed verification and could not be repaired.
    pub rejected: usize,
}

impl RepairStats {
    /// Adds another batch's counters into this one.
    pub fn merge(&mut self, other: &RepairStats) {
        self.verified_clean += other.verified_clean;
        self.repaired += other.repaired;
        self.rejected += other.rejected;
    }

    /// Total results accounted for.
    #[must_use]
    pub fn total(&self) -> usize {
        self.verified_clean + self.repaired + self.rejected
    }
}

/// A repaired selection together with how much repair it needed.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedSelection {
    /// The feasible selection after repair.
    pub selection: Selection,
    /// Queries whose plan had to be replaced (0 when the candidate was
    /// already feasible).
    pub repaired_queries: usize,
}

/// Deterministically repairs an infeasible candidate selection.
///
/// Queries whose entry is a valid plan of that query are kept; every other
/// query is settled greedily (in ascending query order) to the plan with the
/// lowest marginal cost against the running selection, then refined with one
/// min-delta pass via [`CostEvaluator::delta`] over exactly the repaired
/// queries. The result is always structurally feasible. A pure function of
/// `(problem, candidate)` — no RNG, no wall clock — so it is trivially
/// thread-count-invariant and bit-reproducible.
///
/// Fails only when no repair exists: the candidate covers the wrong number
/// of queries.
pub fn repair_selection(
    problem: &MqoProblem,
    candidate: &Selection,
) -> Result<RepairedSelection, IntegrityError> {
    if candidate.num_queries() != problem.num_queries() {
        return Err(IntegrityError::Unrepairable(CoreError::AssignmentLength {
            expected: problem.num_queries(),
            actual: candidate.num_queries(),
        }));
    }
    let mut selected_mask = vec![false; problem.num_plans()];
    let mut plans: Vec<Option<PlanId>> = Vec::with_capacity(problem.num_queries());
    let mut violated: Vec<QueryId> = Vec::new();
    for q in problem.queries() {
        let p = candidate.plan_of(q);
        if p.index() < problem.num_plans() && problem.query_of(p) == q {
            selected_mask[p.index()] = true;
            plans.push(Some(p));
        } else {
            violated.push(q);
            plans.push(None);
        }
    }
    if violated.is_empty() {
        return Ok(RepairedSelection {
            selection: candidate.clone(),
            repaired_queries: 0,
        });
    }
    // Greedy settle: cheapest marginal cost against everything selected so
    // far (the same rule `LogicalMapping::decode_with_repair` uses).
    for &q in &violated {
        let best = problem
            .plans_of(q)
            .min_by(|&p1, &p2| {
                let marginal = |p: PlanId| {
                    let mut c = problem.plan_cost(p);
                    for &(p2, s) in problem.savings_of(p) {
                        if selected_mask[p2.index()] {
                            c -= s;
                        }
                    }
                    c
                };
                marginal(p1).total_cmp(&marginal(p2))
            })
            .expect("queries are non-empty by construction");
        selected_mask[best.index()] = true;
        plans[q.index()] = Some(best);
    }
    let settled = Selection::new(
        plans
            .into_iter()
            .map(|p| p.expect("every query settled"))
            .collect(),
    );
    // Min-delta refinement over the repaired queries: the greedy settle chose
    // against a partial selection; now that all queries are settled,
    // re-examine each repaired query with the exact delta evaluator.
    let mut evaluator = CostEvaluator::new(problem, settled);
    for &q in &violated {
        let best = problem
            .plans_of(q)
            .min_by(|&p1, &p2| evaluator.delta(q, p1).total_cmp(&evaluator.delta(q, p2)))
            .expect("queries are non-empty by construction");
        if evaluator.delta(q, best) < 0.0 {
            evaluator.apply(q, best);
        }
    }
    Ok(RepairedSelection {
        selection: evaluator.selection().clone(),
        repaired_queries: violated.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1 of the paper.
    fn example_problem() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let p2 = b.plans_of(q1)[1];
        let p3 = b.plans_of(q2)[0];
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn tolerance_comparison_is_mixed_absolute_relative() {
        assert!(within_tolerance(0.0, 5e-7, 1e-6));
        assert!(within_tolerance(1e9, 1e9 + 100.0, 1e-6));
        assert!(!within_tolerance(1.0, 1.1, 1e-6));
        assert!(!within_tolerance(f64::NAN, f64::NAN, 1e-6));
        assert!(!within_tolerance(1.0, f64::INFINITY, 1e-6));
    }

    #[test]
    fn verify_selection_accepts_correct_answers() {
        let p = example_problem();
        let sel = Selection::new(vec![PlanId(1), PlanId(2)]);
        let cost = verify_selection(&p, &sel, 2.0, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn verify_selection_rejects_each_corruption_mode() {
        let p = example_problem();
        let sel = Selection::new(vec![PlanId(1), PlanId(2)]);
        // Mis-priced answer.
        assert!(matches!(
            verify_selection(&p, &sel, 1.0, DEFAULT_TOLERANCE).unwrap_err(),
            IntegrityError::CostMismatch { reported, recomputed, .. }
                if reported == 1.0 && recomputed == 2.0
        ));
        // Non-finite cost.
        assert!(matches!(
            verify_selection(&p, &sel, f64::NAN, DEFAULT_TOLERANCE).unwrap_err(),
            IntegrityError::NonFiniteCost { .. }
        ));
        // Plan of the wrong query.
        let bad = Selection::new(vec![PlanId(2), PlanId(2)]);
        assert!(matches!(
            verify_selection(&p, &bad, 2.0, DEFAULT_TOLERANCE).unwrap_err(),
            IntegrityError::InvalidSelection(_)
        ));
        // Wrong length.
        let short = Selection::new(vec![PlanId(0)]);
        assert!(matches!(
            verify_selection(&p, &short, 2.0, DEFAULT_TOLERANCE).unwrap_err(),
            IntegrityError::InvalidSelection(CoreError::AssignmentLength { .. })
        ));
    }

    #[test]
    fn verify_decoded_sample_checks_feasibility_and_the_energy_identity() {
        let p = example_problem();
        let m = LogicalMapping::with_default_epsilon(&p);
        let (sel, cost) =
            verify_decoded_sample(&m, &p, &[false, true, true, false], DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(sel.plans(), &[PlanId(1), PlanId(2)]);
        assert!(matches!(
            verify_decoded_sample(&m, &p, &[true, true, false, false], DEFAULT_TOLERANCE)
                .unwrap_err(),
            IntegrityError::InfeasibleAssignment(_)
        ));
    }

    #[test]
    fn cross_checks_pass_on_honest_data_and_catch_poisoned_weights() {
        let p = example_problem();
        let m = LogicalMapping::with_default_epsilon(&p);
        for mask in 0u32..16 {
            let x: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
            cross_check_sample(m.qubo(), &x, DEFAULT_TOLERANCE).unwrap();
        }
        let ising = Ising::from_qubo(m.qubo());
        let spins = bits_to_spins(&[false, true, true, false]);
        for signs in [[1i8, 1, 1, 1], [-1, 1, -1, 1], [-1, -1, -1, -1]] {
            cross_check_gauge(&ising, &spins, &signs, DEFAULT_TOLERANCE).unwrap();
        }
        // Length mismatches are typed, not panics.
        assert!(cross_check_sample(m.qubo(), &[true], DEFAULT_TOLERANCE).is_err());
        assert!(cross_check_gauge(&ising, &spins, &[1i8], DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn bound_check_rejects_impossibly_good_answers_only() {
        verify_against_bound(2.0, 2.0, DEFAULT_TOLERANCE).unwrap();
        verify_against_bound(3.0, 2.0, DEFAULT_TOLERANCE).unwrap(); // suboptimal is fine
        assert!(matches!(
            verify_against_bound(1.0, 2.0, DEFAULT_TOLERANCE).unwrap_err(),
            IntegrityError::BelowProvenOptimum { .. }
        ));
        assert!(verify_against_bound(f64::NAN, 2.0, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn repair_fixes_cross_query_and_out_of_range_plans() {
        let p = example_problem();
        // Entry 0 points at a plan of query 1; entry 1 is out of range.
        let bad = Selection::new(vec![PlanId(2), PlanId(99)]);
        let repaired = repair_selection(&p, &bad).unwrap();
        assert_eq!(repaired.repaired_queries, 2);
        assert!(p.validate_selection(&repaired.selection).is_ok());
        // Greedy settle picks the individually cheapest plans (cost 2 + 1);
        // reaching the shared-work optimum (cost 2.0) needs the coordinated
        // two-query move the pipeline's bounded descent phase handles.
        assert_eq!(repaired.selection.plans(), &[PlanId(0), PlanId(3)]);
        assert_eq!(p.selection_cost(&repaired.selection), 3.0);
    }

    #[test]
    fn repair_passes_feasible_candidates_through_untouched() {
        let p = example_problem();
        let ok = Selection::new(vec![PlanId(0), PlanId(3)]);
        let repaired = repair_selection(&p, &ok).unwrap();
        assert_eq!(repaired.repaired_queries, 0);
        assert_eq!(repaired.selection, ok);
    }

    #[test]
    fn repair_rejects_wrong_query_count() {
        let p = example_problem();
        let bad = Selection::new(vec![PlanId(0)]);
        assert!(matches!(
            repair_selection(&p, &bad).unwrap_err(),
            IntegrityError::Unrepairable(CoreError::AssignmentLength { .. })
        ));
    }

    #[test]
    fn repair_stats_merge_and_total() {
        let mut a = RepairStats {
            verified_clean: 3,
            repaired: 1,
            rejected: 0,
        };
        a.merge(&RepairStats {
            verified_clean: 2,
            repaired: 0,
            rejected: 1,
        });
        assert_eq!(a.verified_clean, 5);
        assert_eq!(a.repaired, 1);
        assert_eq!(a.rejected, 1);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn errors_render_and_source_chain() {
        let e = IntegrityError::CostMismatch {
            reported: 1.0,
            recomputed: 2.0,
            tolerance: 1e-6,
        };
        assert!(e.to_string().contains("disagrees"));
        let e = IntegrityError::InvalidSelection(CoreError::NoPlanSelected(QueryId(0)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
