//! Error types for problem construction and solution decoding.

use crate::ids::{PlanId, QueryId};

/// Errors produced while building or decoding MQO problems.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A query was declared without any alternative plan.
    EmptyQuery(QueryId),
    /// A plan id referenced a plan that does not exist.
    UnknownPlan(PlanId),
    /// A cost saving was declared between two plans of the same query; such a
    /// saving can never be realised because a valid solution executes at most
    /// one plan per query.
    SavingWithinQuery(PlanId, PlanId),
    /// A cost saving was declared between a plan and itself.
    SelfSaving(PlanId),
    /// A cost saving must be strictly positive (the paper defines
    /// `s_{p1,p2} > 0`).
    NonPositiveSaving(PlanId, PlanId, f64),
    /// A plan execution cost was negative or non-finite.
    InvalidCost(PlanId, f64),
    /// A QUBO assignment selected no plan for this query, so it does not
    /// decode into a valid MQO solution.
    NoPlanSelected(QueryId),
    /// A QUBO assignment selected more than one plan for this query.
    MultiplePlansSelected(QueryId),
    /// An assignment had the wrong number of variables.
    AssignmentLength {
        /// Variables the problem defines.
        expected: usize,
        /// Variables the assignment supplied.
        actual: usize,
    },
    /// A QUBO or Ising weight was NaN or infinite. Non-finite weights poison
    /// every downstream energy (NaN propagates through sums and defeats all
    /// `<` comparisons in the annealing kernels), so constructors reject them
    /// up front.
    NonFiniteWeight {
        /// Which term carried the weight (e.g. `"linear"`, `"coupling"`).
        term: &'static str,
        /// Index of the (first) offending variable.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::EmptyQuery(q) => write!(f, "query {q} has no alternative plans"),
            CoreError::UnknownPlan(p) => write!(f, "plan {p} does not exist"),
            CoreError::SavingWithinQuery(a, b) => write!(
                f,
                "cost saving between {a} and {b} is impossible: both are plans of the same query"
            ),
            CoreError::SelfSaving(p) => {
                write!(f, "cost saving between {p} and itself is meaningless")
            }
            CoreError::NonPositiveSaving(a, b, s) => {
                write!(f, "cost saving between {a} and {b} must be > 0, got {s}")
            }
            CoreError::InvalidCost(p, c) => {
                write!(f, "plan {p} has invalid execution cost {c}")
            }
            CoreError::NoPlanSelected(q) => {
                write!(f, "assignment selects no plan for query {q}")
            }
            CoreError::MultiplePlansSelected(q) => {
                write!(f, "assignment selects more than one plan for query {q}")
            }
            CoreError::AssignmentLength { expected, actual } => write!(
                f,
                "assignment has {actual} variables but the problem has {expected}"
            ),
            CoreError::NonFiniteWeight { term, index, value } => write!(
                f,
                "{term} weight at variable {index} is non-finite ({value})"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = CoreError::SavingWithinQuery(PlanId(1), PlanId(2));
        assert!(e.to_string().contains("same query"));
        let e = CoreError::AssignmentLength {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("3 variables"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&CoreError::SelfSaving(PlanId(0)));
    }
}
