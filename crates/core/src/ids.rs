//! Strongly-typed identifiers used across the whole workspace.
//!
//! All three are thin wrappers around `u32` indices into the owning
//! container; they exist so that a plan index can never be confused with a
//! query index or a QUBO variable index at compile time. Conversions to
//! `usize` are explicit via [`PlanId::index`] etc.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Builds an id from a container index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32::MAX"))
            }

            /// The underlying container index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type! {
    /// Identifies a query within an [`crate::problem::MqoProblem`].
    QueryId
}

id_type! {
    /// Identifies a plan globally within an [`crate::problem::MqoProblem`]
    /// (not relative to its query).
    PlanId
}

id_type! {
    /// Identifies a binary variable of a [`crate::qubo::Qubo`] /
    /// [`crate::ising::Ising`] problem.
    VarId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_usize() {
        let p = PlanId::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(usize::from(p), 42);
        assert_eq!(p, PlanId(42));
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(QueryId::new(1) < QueryId::new(2));
        assert!(VarId::new(0) < VarId::new(100));
    }

    #[test]
    fn display_contains_type_name_and_index() {
        assert_eq!(PlanId::new(7).to_string(), "PlanId(7)");
        assert_eq!(QueryId::new(0).to_string(), "QueryId(0)");
    }

    #[test]
    #[should_panic(expected = "id index exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = PlanId::new(usize::try_from(u32::MAX).unwrap() + 1);
    }
}
