//! Anytime solution-quality traces.
//!
//! The paper's central evaluation (Figures 4 and 5) plots *solution cost as a
//! function of optimization time* for every algorithm. A [`Trace`] is that
//! curve: a monotone sequence of `(elapsed, best cost so far)` improvements
//! that every solver in this workspace records while running.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One improvement event: at `elapsed`, the incumbent cost dropped to `value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Time since the solver started.
    pub elapsed: Duration,
    /// Best objective value known at that time (lower is better).
    pub value: f64,
}

/// A monotone best-so-far quality curve.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records an observation; kept only if it improves on the incumbent.
    /// Returns whether the observation was an improvement.
    pub fn record(&mut self, elapsed: Duration, value: f64) -> bool {
        match self.points.last() {
            Some(last) if value >= last.value => false,
            _ => {
                debug_assert!(
                    self.points.last().is_none_or(|l| l.elapsed <= elapsed),
                    "trace must be recorded in time order"
                );
                self.points.push(TracePoint { elapsed, value });
                true
            }
        }
    }

    /// The improvement events in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The incumbent value at a given time, or `None` before the first
    /// improvement. This is how the harness samples the curve at the paper's
    /// checkpoints (1 ms, 10 ms, …, 100 s).
    pub fn value_at(&self, elapsed: Duration) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed <= elapsed)
            .last()
            .map(|p| p.value)
    }

    /// The final (best) value, if any.
    pub fn best(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// When `value` (or better) was first reached, if ever — used for
    /// Table 1 (time until the optimum was found) and the Figure 6 speedups.
    pub fn time_to_reach(&self, value: f64) -> Option<Duration> {
        self.points
            .iter()
            .find(|p| p.value <= value)
            .map(|p| p.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn record_keeps_only_improvements() {
        let mut t = Trace::new();
        assert!(t.record(ms(1), 10.0));
        assert!(!t.record(ms(2), 11.0));
        assert!(!t.record(ms(3), 10.0));
        assert!(t.record(ms(4), 9.5));
        assert_eq!(t.points().len(), 2);
        assert_eq!(t.best(), Some(9.5));
    }

    #[test]
    fn value_at_samples_the_step_function() {
        let mut t = Trace::new();
        t.record(ms(10), 5.0);
        t.record(ms(100), 3.0);
        assert_eq!(t.value_at(ms(5)), None);
        assert_eq!(t.value_at(ms(10)), Some(5.0));
        assert_eq!(t.value_at(ms(99)), Some(5.0));
        assert_eq!(t.value_at(ms(100)), Some(3.0));
        assert_eq!(t.value_at(ms(10_000)), Some(3.0));
    }

    #[test]
    fn time_to_reach_finds_the_first_crossing() {
        let mut t = Trace::new();
        t.record(ms(1), 8.0);
        t.record(ms(7), 4.0);
        t.record(ms(20), 2.0);
        assert_eq!(t.time_to_reach(8.0), Some(ms(1)));
        assert_eq!(t.time_to_reach(5.0), Some(ms(7)));
        assert_eq!(t.time_to_reach(4.0), Some(ms(7)));
        assert_eq!(t.time_to_reach(1.0), None);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.best(), None);
        assert_eq!(t.value_at(ms(1000)), None);
        assert_eq!(t.time_to_reach(0.0), None);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Trace::new();
        t.record(ms(3), 1.5);
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
