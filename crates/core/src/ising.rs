//! Ising-model formulation and the exact QUBO ⇄ Ising correspondence.
//!
//! The D-Wave hardware natively minimises an Ising energy
//! `E(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j` over spins `s ∈ {−1,+1}^n`.
//! The substitution `x_i = (1 + s_i)/2` maps any QUBO onto an Ising problem
//! (plus a constant offset) and back, preserving the ordering of all
//! solutions. Samplers in `mqo-annealer` operate on [`Ising`] while the rest
//! of the pipeline reasons in QUBO terms.

use crate::ids::VarId;
use crate::qubo::Qubo;
use serde::{Deserialize, Serialize};

/// A sparse Ising problem `Σ h_i s_i + Σ_{i<j} J_ij s_i s_j + offset`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ising {
    h: Vec<f64>,
    j: Vec<(VarId, VarId, f64)>,
    offset: f64,
    adj_offsets: Vec<u32>,
    adj_entries: Vec<(VarId, f64)>,
}

impl Ising {
    /// Builds an Ising problem from explicit fields and couplings.
    ///
    /// `couplings` must reference distinct in-range variables; duplicate
    /// (unordered) pairs accumulate.
    pub fn new(h: Vec<f64>, couplings: Vec<(VarId, VarId, f64)>, offset: f64) -> Self {
        let n = h.len();
        let mut merged = std::collections::BTreeMap::new();
        for (i, j, w) in couplings {
            assert!(i.index() < n && j.index() < n, "coupling out of range");
            assert_ne!(i, j, "self-coupling is not an Ising term");
            let key = if i < j { (i, j) } else { (j, i) };
            *merged.entry(key).or_insert(0.0) += w;
        }
        let j: Vec<(VarId, VarId, f64)> = merged
            .into_iter()
            .filter(|(_, w)| *w != 0.0)
            .map(|((a, b), w)| (a, b, w))
            .collect();

        let mut degree = vec![0u32; n];
        for &(a, b, _) in &j {
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut adj_offsets = vec![0u32; n + 1];
        for i in 0..n {
            adj_offsets[i + 1] = adj_offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let mut adj_entries = vec![(VarId(0), 0.0); adj_offsets[n] as usize];
        for &(a, b, w) in &j {
            adj_entries[cursor[a.index()] as usize] = (b, w);
            cursor[a.index()] += 1;
            adj_entries[cursor[b.index()] as usize] = (a, w);
            cursor[b.index()] += 1;
        }

        Ising {
            h,
            j,
            offset,
            adj_offsets,
            adj_entries,
        }
    }

    /// Number of spins.
    #[inline]
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// Per-spin fields `h_i`.
    #[inline]
    pub fn fields(&self) -> &[f64] {
        &self.h
    }

    /// Upper-triangular couplings `(i, j, J_ij)`.
    #[inline]
    pub fn couplings(&self) -> &[(VarId, VarId, f64)] {
        &self.j
    }

    /// Constant energy offset relative to the source QUBO.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Coupled neighbours of spin `i`: pairs `(j, J_ij)`.
    #[inline]
    pub fn neighbours(&self, i: VarId) -> &[(VarId, f64)] {
        let lo = self.adj_offsets[i.index()] as usize;
        let hi = self.adj_offsets[i.index() + 1] as usize;
        &self.adj_entries[lo..hi]
    }

    /// Evaluates the energy of a spin configuration (`s_i ∈ {−1, +1}`),
    /// including the offset so it is directly comparable to QUBO energies.
    pub fn energy(&self, s: &[i8]) -> f64 {
        assert_eq!(s.len(), self.num_spins(), "spin vector length mismatch");
        debug_assert!(s.iter().all(|&v| v == 1 || v == -1));
        let mut e = self.offset;
        for (h, &si) in self.h.iter().zip(s) {
            e += h * f64::from(si);
        }
        for &(i, j, w) in &self.j {
            e += w * f64::from(s[i.index()]) * f64::from(s[j.index()]);
        }
        e
    }

    /// Energy change from flipping spin `i`, in `O(deg(i))`.
    #[inline]
    pub fn flip_delta(&self, s: &[i8], i: VarId) -> f64 {
        let mut field = self.h[i.index()];
        for &(j, w) in self.neighbours(i) {
            field += w * f64::from(s[j.index()]);
        }
        -2.0 * f64::from(s[i.index()]) * field
    }

    /// Local field at spin `i` (`h_i + Σ_j J_ij s_j`), used by annealing
    /// sweeps that precompute fields.
    #[inline]
    pub fn local_field(&self, s: &[i8], i: VarId) -> f64 {
        let mut field = self.h[i.index()];
        for &(j, w) in self.neighbours(i) {
            field += w * f64::from(s[j.index()]);
        }
        field
    }

    /// Largest absolute field/coupling magnitude; the annealer normalises by
    /// this before programming the device model.
    pub fn max_abs_weight(&self) -> f64 {
        let h = self.h.iter().map(|w| w.abs()).fold(0.0, f64::max);
        let j = self.j.iter().map(|(_, _, w)| w.abs()).fold(0.0, f64::max);
        h.max(j)
    }

    /// Converts a QUBO into the equivalent Ising problem via
    /// `x_i = (1 + s_i)/2`. Energies are preserved exactly:
    /// `qubo.energy(x) == ising.energy(s)` for corresponding assignments.
    pub fn from_qubo(qubo: &Qubo) -> Self {
        let n = qubo.num_vars();
        let mut h = vec![0.0; n];
        let mut offset = 0.0;
        for (i, &a) in qubo.linear().iter().enumerate() {
            h[i] += a / 2.0;
            offset += a / 2.0;
        }
        let mut couplings = Vec::with_capacity(qubo.num_quadratic());
        for &(i, j, b) in qubo.quadratic() {
            couplings.push((i, j, b / 4.0));
            h[i.index()] += b / 4.0;
            h[j.index()] += b / 4.0;
            offset += b / 4.0;
        }
        Ising::new(h, couplings, offset)
    }

    /// Converts back to a QUBO (inverse of [`Ising::from_qubo`] up to the
    /// constant offset, which QUBO cannot represent; the returned f64 is that
    /// residual constant so `qubo.energy(x) + residual == ising.energy(s)`).
    pub fn to_qubo(&self) -> (Qubo, f64) {
        let n = self.num_spins();
        let mut b = Qubo::builder(n);
        let mut residual = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            // h s = h (2x − 1) = 2h x − h
            b.add_linear(VarId::new(i), 2.0 * hi);
            residual -= hi;
        }
        for &(i, j, w) in &self.j {
            // J s_i s_j = J (2x_i−1)(2x_j−1) = 4J x_i x_j − 2J x_i − 2J x_j + J
            b.add_quadratic(i, j, 4.0 * w);
            b.add_linear(i, -2.0 * w);
            b.add_linear(j, -2.0 * w);
            residual += w;
        }
        (b.build(), residual)
    }
}

/// Converts a boolean assignment to spins (`true → +1`, `false → −1`).
pub fn bits_to_spins(x: &[bool]) -> Vec<i8> {
    x.iter().map(|&b| if b { 1 } else { -1 }).collect()
}

/// Converts spins to a boolean assignment (`+1 → true`).
pub fn spins_to_bits(s: &[i8]) -> Vec<bool> {
    s.iter().map(|&v| v > 0).collect()
}

/// Like [`spins_to_bits`], reusing `out` (cleared first) to avoid a fresh
/// allocation in hot read loops.
pub fn spins_to_bits_into(s: &[i8], out: &mut Vec<bool>) {
    out.clear();
    out.extend(s.iter().map(|&v| v > 0));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_qubo() -> Qubo {
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(0), 2.0);
        b.add_linear(VarId(1), -3.0);
        b.add_linear(VarId(2), 1.0);
        b.add_quadratic(VarId(0), VarId(1), 4.0);
        b.add_quadratic(VarId(1), VarId(2), -2.0);
        b.build()
    }

    #[test]
    fn qubo_and_ising_energies_agree_on_all_assignments() {
        let q = small_qubo();
        let ising = Ising::from_qubo(&q);
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            let s = bits_to_spins(&x);
            assert!(
                (q.energy(&x) - ising.energy(&s)).abs() < 1e-12,
                "mismatch on {x:?}"
            );
        }
    }

    #[test]
    fn round_trip_qubo_ising_qubo_preserves_energies() {
        let q = small_qubo();
        let ising = Ising::from_qubo(&q);
        let (q2, residual) = ising.to_qubo();
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            assert!(
                (q.energy(&x) - (q2.energy(&x) + residual)).abs() < 1e-12,
                "round-trip mismatch on {x:?}"
            );
        }
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let ising = Ising::from_qubo(&small_qubo());
        for mask in 0u32..8 {
            let mut s: Vec<i8> = (0..3)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            for i in 0..3 {
                let before = ising.energy(&s);
                let delta = ising.flip_delta(&s, VarId::new(i));
                s[i] = -s[i];
                let after = ising.energy(&s);
                s[i] = -s[i];
                assert!(
                    ((after - before) - delta).abs() < 1e-12,
                    "flip {i} mask {mask}"
                );
            }
        }
    }

    #[test]
    fn spin_bit_conversions_are_inverse() {
        let x = vec![true, false, true, true, false];
        assert_eq!(spins_to_bits(&bits_to_spins(&x)), x);
        let s = vec![1i8, -1, -1, 1];
        assert_eq!(bits_to_spins(&spins_to_bits(&s)), s);
    }

    #[test]
    fn duplicate_couplings_merge_and_self_couplings_panic() {
        let i = Ising::new(
            vec![0.0, 0.0],
            vec![(VarId(0), VarId(1), 1.0), (VarId(1), VarId(0), 0.5)],
            0.0,
        );
        assert_eq!(i.couplings(), &[(VarId(0), VarId(1), 1.5)]);

        let result = std::panic::catch_unwind(|| {
            Ising::new(vec![0.0], vec![(VarId(0), VarId(0), 1.0)], 0.0)
        });
        assert!(result.is_err());
    }

    #[test]
    fn local_field_and_flip_delta_are_consistent() {
        let ising = Ising::from_qubo(&small_qubo());
        let s = vec![1i8, -1, 1];
        for i in 0..3 {
            let v = VarId::new(i);
            let expect = -2.0 * f64::from(s[i]) * ising.local_field(&s, v);
            assert!((ising.flip_delta(&s, v) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn max_abs_weight_covers_fields_and_couplings() {
        let ising = Ising::new(vec![0.5, -3.0], vec![(VarId(0), VarId(1), 2.0)], 10.0);
        assert_eq!(ising.max_abs_weight(), 3.0);
    }
}
