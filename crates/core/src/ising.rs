//! Ising-model formulation and the exact QUBO ⇄ Ising correspondence.
//!
//! The D-Wave hardware natively minimises an Ising energy
//! `E(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j` over spins `s ∈ {−1,+1}^n`.
//! The substitution `x_i = (1 + s_i)/2` maps any QUBO onto an Ising problem
//! (plus a constant offset) and back, preserving the ordering of all
//! solutions. Samplers in `mqo-annealer` operate on [`Ising`] while the rest
//! of the pipeline reasons in QUBO terms.

use crate::error::CoreError;
use crate::ids::VarId;
use crate::qubo::Qubo;
use serde::{Deserialize, Serialize};

/// A sparse Ising problem `Σ h_i s_i + Σ_{i<j} J_ij s_i s_j + offset`.
///
/// The adjacency is stored in structure-of-arrays CSR form
/// (`adj_offsets`/`adj_idx`/`adj_w`) so annealing inner loops can stream
/// neighbour indices and weights from separate dense slices instead of
/// scanning `(VarId, f64)` tuples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ising {
    h: Vec<f64>,
    j: Vec<(VarId, VarId, f64)>,
    offset: f64,
    adj_offsets: Vec<u32>,
    adj_idx: Vec<u32>,
    adj_w: Vec<f64>,
}

impl Ising {
    /// Builds an Ising problem from explicit fields and couplings.
    ///
    /// `couplings` must reference distinct in-range variables; duplicate
    /// (unordered) pairs accumulate.
    pub fn new(h: Vec<f64>, couplings: Vec<(VarId, VarId, f64)>, offset: f64) -> Self {
        let n = h.len();
        debug_assert!(
            h.iter()
                .chain(couplings.iter().map(|(_, _, w)| w))
                .all(|w| w.is_finite()),
            "non-finite Ising weight; untrusted inputs must go through Ising::try_new"
        );
        let mut merged = std::collections::BTreeMap::new();
        for (i, j, w) in couplings {
            assert!(i.index() < n && j.index() < n, "coupling out of range");
            assert_ne!(i, j, "self-coupling is not an Ising term");
            let key = if i < j { (i, j) } else { (j, i) };
            *merged.entry(key).or_insert(0.0) += w;
        }
        let j: Vec<(VarId, VarId, f64)> = merged
            .into_iter()
            .filter(|(_, w)| *w != 0.0)
            .map(|((a, b), w)| (a, b, w))
            .collect();
        Self::from_canonical(h, j, offset)
    }

    /// Like [`Ising::new`], but rejects NaN/infinite fields and couplings
    /// with a typed error. This is the constructor for untrusted input:
    /// a non-finite weight would silently poison every downstream energy
    /// (NaN defeats the `<` comparisons of the annealing kernels), so it
    /// must never reach a programmed sampler.
    pub fn try_new(
        h: Vec<f64>,
        couplings: Vec<(VarId, VarId, f64)>,
        offset: f64,
    ) -> Result<Self, CoreError> {
        for (i, &hi) in h.iter().enumerate() {
            if !hi.is_finite() {
                return Err(CoreError::NonFiniteWeight {
                    term: "field",
                    index: i,
                    value: hi,
                });
            }
        }
        for &(i, _, w) in &couplings {
            if !w.is_finite() {
                return Err(CoreError::NonFiniteWeight {
                    term: "coupling",
                    index: i.index(),
                    value: w,
                });
            }
        }
        Ok(Ising::new(h, couplings, offset))
    }

    /// Builds an Ising problem from an already-canonical coupling list:
    /// unique upper-triangular pairs (`i < j`) sorted lexicographically, as
    /// produced by [`Ising::couplings`] on any existing problem.
    ///
    /// This is the fast path for transformations that preserve the coupling
    /// structure (gauges, control-error perturbation): it skips the merge
    /// map of [`Ising::new`] and builds the adjacency with one counting
    /// sort. Zero weights are *not* filtered; callers deriving from an
    /// existing problem's canonical list keep its exact structure.
    pub fn from_canonical(h: Vec<f64>, couplings: Vec<(VarId, VarId, f64)>, offset: f64) -> Self {
        let n = h.len();
        debug_assert!(
            couplings
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "couplings must be sorted and unique"
        );
        let j = couplings;
        let mut degree = vec![0u32; n];
        for &(a, b, _) in &j {
            assert!(a.index() < n && b.index() < n, "coupling out of range");
            assert!(a < b, "couplings must be upper-triangular");
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut adj_offsets = vec![0u32; n + 1];
        for i in 0..n {
            adj_offsets[i + 1] = adj_offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let entries = adj_offsets[n] as usize;
        let mut adj_idx = vec![0u32; entries];
        let mut adj_w = vec![0.0f64; entries];
        for &(a, b, w) in &j {
            let ca = cursor[a.index()] as usize;
            adj_idx[ca] = b.index() as u32;
            adj_w[ca] = w;
            cursor[a.index()] += 1;
            let cb = cursor[b.index()] as usize;
            adj_idx[cb] = a.index() as u32;
            adj_w[cb] = w;
            cursor[b.index()] += 1;
        }

        Ising {
            h,
            j,
            offset,
            adj_offsets,
            adj_idx,
            adj_w,
        }
    }

    /// The gauge-transformed problem `h_i → g_i h_i`, `J_ij → g_i g_j J_ij`
    /// for signs `g ∈ {−1, +1}^n`.
    ///
    /// Sign flips leave the adjacency structure untouched, so this reuses
    /// the CSR offsets and neighbour indices and only maps the weights —
    /// no merge map, no counting sort. The result is exactly equal (bit for
    /// bit: sign flips are exact in IEEE arithmetic) to rebuilding via
    /// [`Ising::new`] with transformed terms.
    pub fn gauge_transformed(&self, signs: &[i8]) -> Ising {
        assert_eq!(signs.len(), self.num_spins(), "gauge/problem size mismatch");
        debug_assert!(signs.iter().all(|&g| g == 1 || g == -1));
        let h = self
            .h
            .iter()
            .zip(signs)
            .map(|(&hi, &g)| f64::from(g) * hi)
            .collect();
        let j = self
            .j
            .iter()
            .map(|&(a, b, w)| {
                (
                    a,
                    b,
                    f64::from(signs[a.index()]) * f64::from(signs[b.index()]) * w,
                )
            })
            .collect();
        let mut adj_w = self.adj_w.clone();
        for i in 0..self.num_spins() {
            let gi = f64::from(signs[i]);
            let (lo, hi) = (
                self.adj_offsets[i] as usize,
                self.adj_offsets[i + 1] as usize,
            );
            for k in lo..hi {
                adj_w[k] = f64::from(signs[self.adj_idx[k] as usize]) * gi * self.adj_w[k];
            }
        }
        Ising {
            h,
            j,
            offset: self.offset,
            adj_offsets: self.adj_offsets.clone(),
            adj_idx: self.adj_idx.clone(),
            adj_w,
        }
    }

    /// Number of spins.
    #[inline]
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// Per-spin fields `h_i`.
    #[inline]
    pub fn fields(&self) -> &[f64] {
        &self.h
    }

    /// Upper-triangular couplings `(i, j, J_ij)`.
    #[inline]
    pub fn couplings(&self) -> &[(VarId, VarId, f64)] {
        &self.j
    }

    /// Constant energy offset relative to the source QUBO.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Coupled neighbours of spin `i`: pairs `(j, J_ij)` in CSR order.
    #[inline]
    pub fn neighbours(&self, i: VarId) -> impl Iterator<Item = (VarId, f64)> + '_ {
        let lo = self.adj_offsets[i.index()] as usize;
        let hi = self.adj_offsets[i.index() + 1] as usize;
        self.adj_idx[lo..hi]
            .iter()
            .zip(&self.adj_w[lo..hi])
            .map(|(&j, &w)| (VarId(j), w))
    }

    /// Neighbour indices of spin `i` (parallel to
    /// [`Ising::neighbour_weights`]).
    #[inline]
    pub fn neighbour_indices(&self, i: VarId) -> &[u32] {
        let lo = self.adj_offsets[i.index()] as usize;
        let hi = self.adj_offsets[i.index() + 1] as usize;
        &self.adj_idx[lo..hi]
    }

    /// Neighbour coupling weights of spin `i` (parallel to
    /// [`Ising::neighbour_indices`]).
    #[inline]
    pub fn neighbour_weights(&self, i: VarId) -> &[f64] {
        let lo = self.adj_offsets[i.index()] as usize;
        let hi = self.adj_offsets[i.index() + 1] as usize;
        &self.adj_w[lo..hi]
    }

    /// The raw CSR adjacency `(offsets, indices, weights)`: spin `i`'s
    /// neighbours occupy `offsets[i]..offsets[i+1]` of the two flat arrays.
    /// Annealing kernels stream these slices directly.
    #[inline]
    pub fn adjacency(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.adj_offsets, &self.adj_idx, &self.adj_w)
    }

    /// Evaluates the energy of a spin configuration (`s_i ∈ {−1, +1}`),
    /// including the offset so it is directly comparable to QUBO energies.
    pub fn energy(&self, s: &[i8]) -> f64 {
        assert_eq!(s.len(), self.num_spins(), "spin vector length mismatch");
        debug_assert!(s.iter().all(|&v| v == 1 || v == -1));
        let mut e = self.offset;
        for (h, &si) in self.h.iter().zip(s) {
            e += h * f64::from(si);
        }
        for &(i, j, w) in &self.j {
            e += w * f64::from(s[i.index()]) * f64::from(s[j.index()]);
        }
        e
    }

    /// Energy change from flipping spin `i`, in `O(deg(i))`.
    #[inline]
    pub fn flip_delta(&self, s: &[i8], i: VarId) -> f64 {
        -2.0 * f64::from(s[i.index()]) * self.local_field(s, i)
    }

    /// Local field at spin `i` (`h_i + Σ_j J_ij s_j`), used by annealing
    /// sweeps that precompute fields. Accumulates in CSR order — the same
    /// order incremental field maintenance in the annealing kernels uses,
    /// so both paths produce identical floating-point values.
    #[inline]
    pub fn local_field(&self, s: &[i8], i: VarId) -> f64 {
        let lo = self.adj_offsets[i.index()] as usize;
        let hi = self.adj_offsets[i.index() + 1] as usize;
        let mut field = self.h[i.index()];
        for (&j, &w) in self.adj_idx[lo..hi].iter().zip(&self.adj_w[lo..hi]) {
            field += w * f64::from(s[j as usize]);
        }
        field
    }

    /// Writes every spin's local field `h_i + Σ_j J_ij s_j` into `fields`
    /// (resized to `num_spins`). Annealing kernels call this once per read
    /// and then maintain the array incrementally across accepted flips.
    pub fn local_fields_into(&self, s: &[i8], fields: &mut Vec<f64>) {
        let n = self.num_spins();
        debug_assert_eq!(s.len(), n);
        fields.clear();
        fields.extend((0..n).map(|i| self.local_field(s, VarId(i as u32))));
    }

    /// Largest absolute field/coupling magnitude; the annealer normalises by
    /// this before programming the device model.
    pub fn max_abs_weight(&self) -> f64 {
        let h = self.h.iter().map(|w| w.abs()).fold(0.0, f64::max);
        let j = self.j.iter().map(|(_, _, w)| w.abs()).fold(0.0, f64::max);
        h.max(j)
    }

    /// Converts a QUBO into the equivalent Ising problem via
    /// `x_i = (1 + s_i)/2`. Energies are preserved exactly:
    /// `qubo.energy(x) == ising.energy(s)` for corresponding assignments.
    pub fn from_qubo(qubo: &Qubo) -> Self {
        let n = qubo.num_vars();
        let mut h = vec![0.0; n];
        let mut offset = 0.0;
        for (i, &a) in qubo.linear().iter().enumerate() {
            h[i] += a / 2.0;
            offset += a / 2.0;
        }
        let mut couplings = Vec::with_capacity(qubo.num_quadratic());
        for &(i, j, b) in qubo.quadratic() {
            couplings.push((i, j, b / 4.0));
            h[i.index()] += b / 4.0;
            h[j.index()] += b / 4.0;
            offset += b / 4.0;
        }
        Ising::new(h, couplings, offset)
    }

    /// Converts back to a QUBO (inverse of [`Ising::from_qubo`] up to the
    /// constant offset, which QUBO cannot represent; the returned f64 is that
    /// residual constant so `qubo.energy(x) + residual == ising.energy(s)`).
    pub fn to_qubo(&self) -> (Qubo, f64) {
        let n = self.num_spins();
        let mut b = Qubo::builder(n);
        let mut residual = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            // h s = h (2x − 1) = 2h x − h
            b.add_linear(VarId::new(i), 2.0 * hi);
            residual -= hi;
        }
        for &(i, j, w) in &self.j {
            // J s_i s_j = J (2x_i−1)(2x_j−1) = 4J x_i x_j − 2J x_i − 2J x_j + J
            b.add_quadratic(i, j, 4.0 * w);
            b.add_linear(i, -2.0 * w);
            b.add_linear(j, -2.0 * w);
            residual += w;
        }
        (b.build(), residual)
    }
}

/// Converts a boolean assignment to spins (`true → +1`, `false → −1`).
pub fn bits_to_spins(x: &[bool]) -> Vec<i8> {
    x.iter().map(|&b| if b { 1 } else { -1 }).collect()
}

/// Converts spins to a boolean assignment (`+1 → true`).
pub fn spins_to_bits(s: &[i8]) -> Vec<bool> {
    s.iter().map(|&v| v > 0).collect()
}

/// Like [`spins_to_bits`], reusing `out` (cleared first) to avoid a fresh
/// allocation in hot read loops.
pub fn spins_to_bits_into(s: &[i8], out: &mut Vec<bool>) {
    out.clear();
    out.extend(s.iter().map(|&v| v > 0));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_qubo() -> Qubo {
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(0), 2.0);
        b.add_linear(VarId(1), -3.0);
        b.add_linear(VarId(2), 1.0);
        b.add_quadratic(VarId(0), VarId(1), 4.0);
        b.add_quadratic(VarId(1), VarId(2), -2.0);
        b.build()
    }

    #[test]
    fn qubo_and_ising_energies_agree_on_all_assignments() {
        let q = small_qubo();
        let ising = Ising::from_qubo(&q);
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            let s = bits_to_spins(&x);
            assert!(
                (q.energy(&x) - ising.energy(&s)).abs() < 1e-12,
                "mismatch on {x:?}"
            );
        }
    }

    #[test]
    fn round_trip_qubo_ising_qubo_preserves_energies() {
        let q = small_qubo();
        let ising = Ising::from_qubo(&q);
        let (q2, residual) = ising.to_qubo();
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            assert!(
                (q.energy(&x) - (q2.energy(&x) + residual)).abs() < 1e-12,
                "round-trip mismatch on {x:?}"
            );
        }
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let ising = Ising::from_qubo(&small_qubo());
        for mask in 0u32..8 {
            let mut s: Vec<i8> = (0..3)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            for i in 0..3 {
                let before = ising.energy(&s);
                let delta = ising.flip_delta(&s, VarId::new(i));
                s[i] = -s[i];
                let after = ising.energy(&s);
                s[i] = -s[i];
                assert!(
                    ((after - before) - delta).abs() < 1e-12,
                    "flip {i} mask {mask}"
                );
            }
        }
    }

    #[test]
    fn spin_bit_conversions_are_inverse() {
        let x = vec![true, false, true, true, false];
        assert_eq!(spins_to_bits(&bits_to_spins(&x)), x);
        let s = vec![1i8, -1, -1, 1];
        assert_eq!(bits_to_spins(&spins_to_bits(&s)), s);
    }

    #[test]
    fn duplicate_couplings_merge_and_self_couplings_panic() {
        let i = Ising::new(
            vec![0.0, 0.0],
            vec![(VarId(0), VarId(1), 1.0), (VarId(1), VarId(0), 0.5)],
            0.0,
        );
        assert_eq!(i.couplings(), &[(VarId(0), VarId(1), 1.5)]);

        let result = std::panic::catch_unwind(|| {
            Ising::new(vec![0.0], vec![(VarId(0), VarId(0), 1.0)], 0.0)
        });
        assert!(result.is_err());
    }

    #[test]
    fn local_field_and_flip_delta_are_consistent() {
        let ising = Ising::from_qubo(&small_qubo());
        let s = vec![1i8, -1, 1];
        for i in 0..3 {
            let v = VarId::new(i);
            let expect = -2.0 * f64::from(s[i]) * ising.local_field(&s, v);
            assert!((ising.flip_delta(&s, v) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn max_abs_weight_covers_fields_and_couplings() {
        let ising = Ising::new(vec![0.5, -3.0], vec![(VarId(0), VarId(1), 2.0)], 10.0);
        assert_eq!(ising.max_abs_weight(), 3.0);
    }

    #[test]
    fn from_canonical_equals_new_on_canonical_input() {
        let built = Ising::from_qubo(&small_qubo());
        let rebuilt = Ising::from_canonical(
            built.fields().to_vec(),
            built.couplings().to_vec(),
            built.offset(),
        );
        assert_eq!(built, rebuilt);
    }

    #[test]
    fn gauge_transformed_equals_full_rebuild() {
        let ising = Ising::from_qubo(&small_qubo());
        for mask in 0u32..8 {
            let signs: Vec<i8> = (0..3)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            let fast = ising.gauge_transformed(&signs);
            let h = ising
                .fields()
                .iter()
                .enumerate()
                .map(|(i, &hi)| f64::from(signs[i]) * hi)
                .collect();
            let couplings = ising
                .couplings()
                .iter()
                .map(|&(i, j, w)| {
                    (
                        i,
                        j,
                        f64::from(signs[i.index()]) * f64::from(signs[j.index()]) * w,
                    )
                })
                .collect();
            let slow = Ising::new(h, couplings, ising.offset());
            assert_eq!(fast, slow, "gauge rebuild mismatch for signs {signs:?}");
        }
    }

    #[test]
    fn soa_accessors_agree_with_the_neighbour_iterator() {
        let ising = Ising::from_qubo(&small_qubo());
        let (offsets, idx, w) = ising.adjacency();
        assert_eq!(offsets.len(), ising.num_spins() + 1);
        assert_eq!(idx.len(), w.len());
        for i in 0..ising.num_spins() {
            let v = VarId::new(i);
            let from_iter: Vec<(u32, f64)> = ising
                .neighbours(v)
                .map(|(j, w)| (j.index() as u32, w))
                .collect();
            let from_slices: Vec<(u32, f64)> = ising
                .neighbour_indices(v)
                .iter()
                .copied()
                .zip(ising.neighbour_weights(v).iter().copied())
                .collect();
            assert_eq!(from_iter, from_slices);
        }
    }

    #[test]
    fn try_new_rejects_non_finite_weights_with_typed_errors() {
        assert!(matches!(
            Ising::try_new(vec![f64::NAN, 0.0], vec![], 0.0).unwrap_err(),
            CoreError::NonFiniteWeight {
                term: "field",
                index: 0,
                ..
            }
        ));
        assert!(matches!(
            Ising::try_new(
                vec![0.0, 0.0],
                vec![(VarId(0), VarId(1), f64::NEG_INFINITY)],
                0.0
            )
            .unwrap_err(),
            CoreError::NonFiniteWeight {
                term: "coupling",
                ..
            }
        ));
        let ok = Ising::try_new(vec![0.5, -1.0], vec![(VarId(0), VarId(1), 2.0)], 0.25).unwrap();
        assert_eq!(ok.couplings(), &[(VarId(0), VarId(1), 2.0)]);
    }

    #[test]
    fn local_fields_into_matches_per_spin_local_field() {
        let ising = Ising::from_qubo(&small_qubo());
        let s = vec![1i8, -1, 1];
        let mut fields = Vec::new();
        ising.local_fields_into(&s, &mut fields);
        for (i, &f) in fields.iter().enumerate() {
            assert_eq!(f, ising.local_field(&s, VarId::new(i)));
        }
        assert_eq!(fields.len(), 3);
    }
}
