//! Quadratic unconstrained binary optimization (QUBO) problems.
//!
//! A QUBO minimises `Σ_{i≤j} w_ij x_i x_j` over binary variables
//! `x ∈ {0,1}^n`. Because `x_i² = x_i`, diagonal weights are linear terms;
//! the representation below keeps them separate. This is exactly the input
//! format the D-Wave annealer accepts (Section 3 of the paper) after the
//! additional Ising rescaling handled by `mqo-annealer`.

use crate::error::CoreError;
use crate::ids::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse, immutable QUBO instance.
///
/// Build one with [`QuboBuilder`]. Quadratic terms are stored as
/// upper-triangular triplets (`i < j`) plus a symmetric CSR adjacency used by
/// the `O(deg)` flip-delta evaluation that local-search samplers rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qubo {
    n: usize,
    linear: Vec<f64>,
    quad: Vec<(VarId, VarId, f64)>,
    adj_offsets: Vec<u32>,
    adj_entries: Vec<(VarId, f64)>,
}

impl Qubo {
    /// Starts building a QUBO over `n` variables.
    pub fn builder(n: usize) -> QuboBuilder {
        QuboBuilder {
            n,
            linear: vec![0.0; n],
            quad: BTreeMap::new(),
        }
    }

    /// Number of binary variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of non-zero quadratic terms.
    #[inline]
    pub fn num_quadratic(&self) -> usize {
        self.quad.len()
    }

    /// Linear weights, indexed by variable.
    #[inline]
    pub fn linear(&self) -> &[f64] {
        &self.linear
    }

    /// Upper-triangular quadratic triplets `(i, j, w)` with `i < j`.
    #[inline]
    pub fn quadratic(&self) -> &[(VarId, VarId, f64)] {
        &self.quad
    }

    /// Quadratic neighbours of variable `i`: pairs `(j, w_ij)`.
    #[inline]
    pub fn neighbours(&self, i: VarId) -> &[(VarId, f64)] {
        let lo = self.adj_offsets[i.index()] as usize;
        let hi = self.adj_offsets[i.index() + 1] as usize;
        &self.adj_entries[lo..hi]
    }

    /// Evaluates the objective for a full assignment.
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n, "assignment length mismatch");
        let mut e = 0.0;
        for (i, (&w, &xi)) in self.linear.iter().zip(x).enumerate() {
            let _ = i;
            if xi {
                e += w;
            }
        }
        for &(i, j, w) in &self.quad {
            if x[i.index()] && x[j.index()] {
                e += w;
            }
        }
        e
    }

    /// Energy change caused by flipping variable `i` in assignment `x`,
    /// in `O(deg(i))`.
    pub fn flip_delta(&self, x: &[bool], i: VarId) -> f64 {
        let mut field = self.linear[i.index()];
        for &(j, w) in self.neighbours(i) {
            if x[j.index()] {
                field += w;
            }
        }
        if x[i.index()] {
            -field
        } else {
            field
        }
    }

    /// The largest absolute weight (linear or quadratic); 0 for an empty
    /// problem. Relevant because large weight ranges degrade annealer
    /// precision (Section 4 of the paper).
    pub fn max_abs_weight(&self) -> f64 {
        let lin = self.linear.iter().map(|w| w.abs()).fold(0.0, f64::max);
        let quad = self
            .quad
            .iter()
            .map(|(_, _, w)| w.abs())
            .fold(0.0, f64::max);
        lin.max(quad)
    }

    /// Canonical hash of the problem's *structure* — the variable count and
    /// the sorted quadratic adjacency, ignoring all weights.
    ///
    /// Minor embeddings depend only on this structure (Choi's construction
    /// routes edges, not weights), so two QUBOs with equal `structure_hash`
    /// can share an embedding and differ only in the weights programmed onto
    /// it. This is the cache key of the service layer's embedding cache.
    ///
    /// The hash is a fixed FNV-1a over the canonical upper-triangular edge
    /// list: stable across processes, platforms, and compiler versions (it
    /// never goes through `std::hash`).
    pub fn structure_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.n as u64);
        // `quad` is already sorted upper-triangular (BTreeMap order), so the
        // byte stream is canonical for the structure.
        for &(i, j, _) in &self.quad {
            mix(u64::from(i.0));
            mix(u64::from(j.0));
        }
        h
    }

    /// Exhaustive minimisation for tests and tiny instances (`n ≤ 24`).
    /// Returns a minimising assignment and its energy; ties break towards the
    /// lexicographically smallest assignment (all-false first).
    pub fn brute_force_minimum(&self) -> (Vec<bool>, f64) {
        assert!(self.n <= 24, "brute force is limited to 24 variables");
        let mut best = vec![false; self.n];
        let mut best_e = self.energy(&best);
        let mut x = vec![false; self.n];
        for mask in 1u32..(1u32 << self.n) {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = mask & (1 << i) != 0;
            }
            let e = self.energy(&x);
            if e < best_e {
                best_e = e;
                best.clone_from(&x);
            }
        }
        (best, best_e)
    }
}

/// Accumulating builder for [`Qubo`].
///
/// Weights added to the same (unordered) variable pair accumulate; diagonal
/// quadratic terms fold into the linear part because `x_i² = x_i`.
#[derive(Debug, Clone)]
pub struct QuboBuilder {
    n: usize,
    linear: Vec<f64>,
    quad: BTreeMap<(VarId, VarId), f64>,
}

impl QuboBuilder {
    /// Adds `w · x_i`.
    pub fn add_linear(&mut self, i: VarId, w: f64) {
        assert!(i.index() < self.n, "variable out of range");
        self.linear[i.index()] += w;
    }

    /// Adds `w · x_i x_j`. `i == j` folds into the linear term.
    pub fn add_quadratic(&mut self, i: VarId, j: VarId, w: f64) {
        assert!(
            i.index() < self.n && j.index() < self.n,
            "variable out of range"
        );
        if i == j {
            self.linear[i.index()] += w;
            return;
        }
        let key = if i < j { (i, j) } else { (j, i) };
        *self.quad.entry(key).or_insert(0.0) += w;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Like [`QuboBuilder::build`], but rejects NaN/infinite weights with a
    /// typed error instead of letting them poison annealing energies
    /// downstream. (`build` keeps its infallible signature for trusted
    /// construction paths such as [`crate::logical::LogicalMapping`], whose
    /// weights are finite by problem validation; untrusted inputs should go
    /// through `try_build`.)
    pub fn try_build(self) -> Result<Qubo, CoreError> {
        for (i, &w) in self.linear.iter().enumerate() {
            if !w.is_finite() {
                return Err(CoreError::NonFiniteWeight {
                    term: "linear",
                    index: i,
                    value: w,
                });
            }
        }
        for (&(i, _), &w) in &self.quad {
            if !w.is_finite() {
                return Err(CoreError::NonFiniteWeight {
                    term: "quadratic",
                    index: i.index(),
                    value: w,
                });
            }
        }
        Ok(self.build())
    }

    /// Freezes the problem, dropping exactly-zero quadratic entries.
    pub fn build(self) -> Qubo {
        let quad: Vec<(VarId, VarId, f64)> = self
            .quad
            .into_iter()
            .filter(|(_, w)| *w != 0.0)
            .map(|((i, j), w)| (i, j, w))
            .collect();

        let n = self.n;
        let mut degree = vec![0u32; n];
        for &(i, j, _) in &quad {
            degree[i.index()] += 1;
            degree[j.index()] += 1;
        }
        let mut adj_offsets = vec![0u32; n + 1];
        for i in 0..n {
            adj_offsets[i + 1] = adj_offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let mut adj_entries = vec![(VarId(0), 0.0); adj_offsets[n] as usize];
        for &(i, j, w) in &quad {
            adj_entries[cursor[i.index()] as usize] = (j, w);
            cursor[i.index()] += 1;
            adj_entries[cursor[j.index()] as usize] = (i, w);
            cursor[j.index()] += 1;
        }

        Qubo {
            n,
            linear: self.linear,
            quad,
            adj_offsets,
            adj_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_qubo() -> Qubo {
        // E = 2x0 − 3x1 + x2 + 4x0x1 − 2x1x2
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(0), 2.0);
        b.add_linear(VarId(1), -3.0);
        b.add_linear(VarId(2), 1.0);
        b.add_quadratic(VarId(0), VarId(1), 4.0);
        b.add_quadratic(VarId(2), VarId(1), -2.0);
        b.build()
    }

    #[test]
    fn energy_evaluates_linear_and_quadratic_terms() {
        let q = small_qubo();
        assert_eq!(q.energy(&[false, false, false]), 0.0);
        assert_eq!(q.energy(&[true, false, false]), 2.0);
        assert_eq!(q.energy(&[true, true, false]), 2.0 - 3.0 + 4.0);
        assert_eq!(q.energy(&[false, true, true]), -3.0 + 1.0 - 2.0);
        assert_eq!(q.energy(&[true, true, true]), 2.0 - 3.0 + 1.0 + 4.0 - 2.0);
    }

    #[test]
    fn flip_delta_agrees_with_energy_difference_everywhere() {
        let q = small_qubo();
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            for i in 0..3 {
                let mut y = x.clone();
                y[i] = !y[i];
                let expect = q.energy(&y) - q.energy(&x);
                let fast = q.flip_delta(&x, VarId::new(i));
                assert!(
                    (expect - fast).abs() < 1e-12,
                    "flip {i} on {x:?}: {expect} vs {fast}"
                );
            }
        }
    }

    #[test]
    fn brute_force_finds_global_minimum() {
        let q = small_qubo();
        let (x, e) = q.brute_force_minimum();
        // Optimum: x1 = x2 = 1, x0 = 0 → −3 + 1 − 2 = −4.
        assert_eq!(x, vec![false, true, true]);
        assert_eq!(e, -4.0);
    }

    #[test]
    fn structure_hash_ignores_weights_but_not_structure() {
        let h = small_qubo().structure_hash();
        // Same adjacency, completely different weights.
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(0), -7.5);
        b.add_quadratic(VarId(0), VarId(1), 0.125);
        b.add_quadratic(VarId(1), VarId(2), 99.0);
        assert_eq!(b.build().structure_hash(), h);
        // One extra edge changes the hash.
        let mut b = Qubo::builder(3);
        b.add_quadratic(VarId(0), VarId(1), 4.0);
        b.add_quadratic(VarId(1), VarId(2), -2.0);
        b.add_quadratic(VarId(0), VarId(2), 1.0);
        assert_ne!(b.build().structure_hash(), h);
        // A different variable count changes the hash even with equal edges.
        let mut b = Qubo::builder(4);
        b.add_quadratic(VarId(0), VarId(1), 4.0);
        b.add_quadratic(VarId(1), VarId(2), -2.0);
        assert_ne!(b.build().structure_hash(), h);
    }

    #[test]
    fn duplicate_and_reversed_pairs_accumulate() {
        let mut b = Qubo::builder(2);
        b.add_quadratic(VarId(0), VarId(1), 1.0);
        b.add_quadratic(VarId(1), VarId(0), 2.0);
        let q = b.build();
        assert_eq!(q.num_quadratic(), 1);
        assert_eq!(q.quadratic()[0], (VarId(0), VarId(1), 3.0));
    }

    #[test]
    fn diagonal_quadratic_folds_into_linear() {
        let mut b = Qubo::builder(1);
        b.add_quadratic(VarId(0), VarId(0), 5.0);
        b.add_linear(VarId(0), 1.0);
        let q = b.build();
        assert_eq!(q.num_quadratic(), 0);
        assert_eq!(q.linear(), &[6.0]);
        assert_eq!(q.energy(&[true]), 6.0);
    }

    #[test]
    fn zero_weights_are_dropped() {
        let mut b = Qubo::builder(2);
        b.add_quadratic(VarId(0), VarId(1), 1.0);
        b.add_quadratic(VarId(0), VarId(1), -1.0);
        let q = b.build();
        assert_eq!(q.num_quadratic(), 0);
        assert!(q.neighbours(VarId(0)).is_empty());
    }

    #[test]
    fn neighbours_are_symmetric() {
        let q = small_qubo();
        assert_eq!(q.neighbours(VarId(0)), &[(VarId(1), 4.0)]);
        let mut n1: Vec<_> = q.neighbours(VarId(1)).to_vec();
        n1.sort_by_key(|(v, _)| *v);
        assert_eq!(n1, vec![(VarId(0), 4.0), (VarId(2), -2.0)]);
    }

    #[test]
    fn max_abs_weight_spans_linear_and_quadratic() {
        let q = small_qubo();
        assert_eq!(q.max_abs_weight(), 4.0);
    }

    #[test]
    fn serde_round_trip() {
        let q = small_qubo();
        let json = serde_json::to_string(&q).unwrap();
        let back: Qubo = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    #[should_panic(expected = "assignment length mismatch")]
    fn wrong_assignment_length_panics() {
        small_qubo().energy(&[true]);
    }

    #[test]
    fn try_build_rejects_non_finite_weights_with_typed_errors() {
        let mut b = Qubo::builder(2);
        b.add_linear(VarId(0), f64::NAN);
        assert!(matches!(
            b.try_build().unwrap_err(),
            CoreError::NonFiniteWeight {
                term: "linear",
                index: 0,
                ..
            }
        ));

        let mut b = Qubo::builder(2);
        b.add_quadratic(VarId(0), VarId(1), f64::INFINITY);
        assert!(matches!(
            b.try_build().unwrap_err(),
            CoreError::NonFiniteWeight {
                term: "quadratic",
                ..
            }
        ));

        // NaN survives the `!= 0.0` zero-drop filter of `build`, which is
        // exactly why the typed gate exists.
        let mut b = Qubo::builder(2);
        b.add_quadratic(VarId(0), VarId(1), f64::NAN);
        assert_eq!(b.clone().build().num_quadratic(), 1);
        assert!(b.try_build().is_err());

        let mut b = Qubo::builder(2);
        b.add_linear(VarId(1), -3.0);
        b.add_quadratic(VarId(0), VarId(1), 2.0);
        assert!(b.try_build().is_ok());
    }
}
