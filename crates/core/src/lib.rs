#![warn(missing_docs)]

//! # mqo-core
//!
//! Core problem model and logical mapping for *Multiple Query Optimization on
//! the D-Wave 2X Adiabatic Quantum Computer* (Trummer & Koch, PVLDB 9(9),
//! 2016).
//!
//! This crate contains everything from Sections 3 and 4 of the paper:
//!
//! * the formal **MQO problem model** ([`problem::MqoProblem`]): a batch of
//!   queries, alternative plans per query with execution costs `c_p`, and
//!   pairwise cost savings `s_{p1,p2}` between plans that can share
//!   intermediate results;
//! * **solutions** ([`solution::Selection`]) — one plan per query — and their
//!   accumulated execution cost `C(Pe) = Σ c_p − Σ s_{p1,p2}` with both full
//!   and incremental (delta) evaluation;
//! * the **QUBO** formalism ([`qubo::Qubo`]) accepted by the annealer, and the
//!   equivalent **Ising** formulation ([`ising::Ising`]) that physical
//!   samplers operate on;
//! * the **logical mapping** ([`logical::LogicalMapping`]) that turns an MQO
//!   instance into an energy formula `wL·EL + wM·EM + EC + ES` whose global
//!   minimum encodes the optimal plan selection (Theorem 1 of the paper), and
//!   its inverse that turns variable assignments back into plan selections.
//!
//! The physical mapping onto the Chimera qubit matrix lives in `mqo-chimera`,
//! samplers in `mqo-annealer`, and classical baselines in `mqo-milp` /
//! `mqo-heuristics`.
//!
//! ## Example 1 from the paper
//!
//! ```
//! use mqo_core::problem::MqoProblem;
//! use mqo_core::logical::LogicalMapping;
//!
//! // Two queries; q1 has plans with costs {2, 4}, q2 has plans {3, 1}.
//! // Plans p2 and p3 (indices 1 and 2) share work worth 5 cost units.
//! let mut b = MqoProblem::builder();
//! let q1 = b.add_query(&[2.0, 4.0]);
//! let q2 = b.add_query(&[3.0, 1.0]);
//! let p2 = b.plans_of(q1)[1];
//! let p3 = b.plans_of(q2)[0];
//! b.add_saving(p2, p3, 5.0).unwrap();
//! let problem = b.build().unwrap();
//!
//! let mapping = LogicalMapping::new(&problem, 0.25);
//! let (best, _energy) = mapping.qubo().brute_force_minimum();
//! let selection = mapping.decode_strict(&best).unwrap();
//! // The optimum executes p2 and p3 despite their higher individual costs.
//! assert_eq!(selection.plan_of(q1), p2);
//! assert_eq!(selection.plan_of(q2), p3);
//! assert_eq!(problem.selection_cost(&selection), 4.0 + 3.0 - 5.0);
//! ```

pub mod error;
pub mod ids;
pub mod integrity;
pub mod ising;
pub mod logical;
pub mod problem;
pub mod qubo;
pub mod solution;
pub mod tasks;
pub mod trace;

pub use error::CoreError;
pub use ids::{PlanId, QueryId, VarId};
pub use integrity::{IntegrityError, RepairStats};
pub use ising::Ising;
pub use logical::LogicalMapping;
pub use problem::{MqoProblem, ProblemBuilder};
pub use qubo::{Qubo, QuboBuilder};
pub use solution::{CostEvaluator, Selection};
pub use trace::{Trace, TracePoint};
