//! The logical mapping of Section 4: MQO → QUBO and back.
//!
//! One binary variable `X_p` per plan (`X_p = 1` ⇔ plan `p` executes). The
//! logical energy formula is
//!
//! ```text
//! wL·EL + wM·EM + EC + ES
//!   EL = −Σ_p X_p                          (at least one plan per query)
//!   EM =  Σ_q Σ_{p1<p2 ∈ Pq} X_p1 X_p2    (at most one plan per query)
//!   EC =  Σ_p c_p X_p                      (execution cost)
//!   ES = −Σ_{p1,p2} s_{p1,p2} X_p1 X_p2   (shared work)
//! ```
//!
//! with `wL = max_p c_p + ε` and `wM = wL + max_{p1} Σ_{p2} s_{p1,p2} + ε`.
//! Theorem 1 of the paper (proved here as property tests in
//! `tests/theorem1.rs` of the workspace root and unit tests below) states the
//! QUBO optimum encodes an optimal valid MQO solution.
//!
//! The energy of a *valid* selection differs from its execution cost by the
//! constant `−wL·|Q|` (term EL contributes `−wL` per query, EM contributes 0),
//! exposed as [`LogicalMapping::energy_offset`].

use crate::error::CoreError;
use crate::ids::{PlanId, QueryId, VarId};
use crate::problem::MqoProblem;
use crate::qubo::Qubo;
use crate::solution::Selection;

/// Default weight slack used by the paper's implementation (Section 4).
pub const DEFAULT_EPSILON: f64 = 0.25;

/// The logical mapping from an MQO instance to a QUBO instance, retaining
/// everything needed to interpret QUBO assignments as plan selections.
///
/// Variable `VarId(i)` corresponds to `PlanId(i)`: the mapping is the
/// identity on indices because plans are already densely numbered.
#[derive(Debug, Clone)]
pub struct LogicalMapping {
    qubo: Qubo,
    w_l: f64,
    w_m: f64,
    epsilon: f64,
    num_queries: usize,
    /// `plan_range[q]` — global plan id range of query `q` (copied from the
    /// problem so decoding does not need the problem itself).
    plan_range: Vec<(u32, u32)>,
}

impl LogicalMapping {
    /// Maps `problem` into a QUBO using weight slack `epsilon` (`ε > 0`;
    /// the paper uses 0.25).
    ///
    /// Runs in `O(|P| + Σ_q |P_q|² + |S|)` — the `O(n·(m·l)²)` bound of
    /// Theorem 4 restricted to the logical phase.
    pub fn new(problem: &MqoProblem, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let w_l = problem.max_plan_cost() + epsilon;
        let w_m = w_l + problem.max_savings_sum() + epsilon;

        let mut b = Qubo::builder(problem.num_plans());
        for p in problem.plans() {
            let var = VarId(p.0);
            // EC: + c_p X_p ; wL·EL: − wL X_p
            b.add_linear(var, problem.plan_cost(p) - w_l);
        }
        // wM·EM: + wM X_p1 X_p2 for alternative plans of the same query.
        for q in problem.queries() {
            let plans: Vec<PlanId> = problem.plans_of(q).collect();
            for (i, &p1) in plans.iter().enumerate() {
                for &p2 in &plans[i + 1..] {
                    b.add_quadratic(VarId(p1.0), VarId(p2.0), w_m);
                }
            }
        }
        // ES: − s X_p1 X_p2 for sharing pairs.
        for &(p1, p2, s) in problem.savings() {
            b.add_quadratic(VarId(p1.0), VarId(p2.0), -s);
        }

        let plan_range = problem
            .queries()
            .map(|q| {
                let mut it = problem.plans_of(q);
                let first = it.next().expect("non-empty query").0;
                let last = it.last().map_or(first, |p| p.0);
                (first, last + 1)
            })
            .collect();

        LogicalMapping {
            qubo: b.build(),
            w_l,
            w_m,
            epsilon,
            num_queries: problem.num_queries(),
            plan_range,
        }
    }

    /// Maps with the paper's default `ε = 0.25`.
    pub fn with_default_epsilon(problem: &MqoProblem) -> Self {
        Self::new(problem, DEFAULT_EPSILON)
    }

    /// The logical energy formula as a QUBO.
    #[inline]
    pub fn qubo(&self) -> &Qubo {
        &self.qubo
    }

    /// Weight `wL` scaling the at-least-one-plan term.
    #[inline]
    pub fn w_l(&self) -> f64 {
        self.w_l
    }

    /// Weight `wM` scaling the at-most-one-plan term.
    #[inline]
    pub fn w_m(&self) -> f64 {
        self.w_m
    }

    /// The slack `ε` used when deriving the weights.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Constant difference between QUBO energy and MQO execution cost for
    /// valid selections: `energy(x) = cost(selection) + energy_offset()`.
    #[inline]
    pub fn energy_offset(&self) -> f64 {
        -self.w_l * self.num_queries as f64
    }

    /// The QUBO variable representing a plan.
    #[inline]
    pub fn var_of_plan(&self, p: PlanId) -> VarId {
        VarId(p.0)
    }

    /// The plan represented by a QUBO variable.
    #[inline]
    pub fn plan_of_var(&self, v: VarId) -> PlanId {
        PlanId(v.0)
    }

    /// Encodes a valid selection as a QUBO assignment (inverse of
    /// [`decode_strict`](Self::decode_strict)).
    pub fn encode(&self, selection: &Selection) -> Vec<bool> {
        let mut x = vec![false; self.qubo.num_vars()];
        for &p in selection.plans() {
            x[p.index()] = true;
        }
        x
    }

    /// Decodes a QUBO assignment into a selection, failing when the
    /// assignment violates the one-plan-per-query constraint.
    pub fn decode_strict(&self, x: &[bool]) -> Result<Selection, CoreError> {
        if x.len() != self.qubo.num_vars() {
            return Err(CoreError::AssignmentLength {
                expected: self.qubo.num_vars(),
                actual: x.len(),
            });
        }
        let mut plans = Vec::with_capacity(self.num_queries);
        for (q, &(a, b)) in self.plan_range.iter().enumerate() {
            let mut chosen = None;
            for p in a..b {
                if x[p as usize] {
                    if chosen.is_some() {
                        return Err(CoreError::MultiplePlansSelected(QueryId::new(q)));
                    }
                    chosen = Some(PlanId(p));
                }
            }
            plans.push(chosen.ok_or(CoreError::NoPlanSelected(QueryId::new(q)))?);
        }
        Ok(Selection::new(plans))
    }

    /// Decodes with repair: queries that violate the one-plan constraint
    /// get a greedy fix — among their candidates (the selected plans when
    /// over-selected, all plans when none was selected) the plan with the
    /// lowest *marginal* cost against everything else currently selected is
    /// kept. Used to salvage near-feasible annealer samples (with correctly
    /// scaled weights the ground state never needs repair, but noisy reads
    /// can).
    ///
    /// Returns the repaired selection and whether any repair was necessary.
    pub fn decode_with_repair(&self, problem: &MqoProblem, x: &[bool]) -> (Selection, bool) {
        assert_eq!(x.len(), self.qubo.num_vars(), "assignment length mismatch");
        // First pass: settle the valid queries, remember the violated ones.
        let mut selected_mask = vec![false; problem.num_plans()];
        let mut plans: Vec<Option<PlanId>> = Vec::with_capacity(self.num_queries);
        let mut violated: Vec<(usize, Vec<PlanId>)> = Vec::new();
        for (qi, &(a, b)) in self.plan_range.iter().enumerate() {
            let chosen: Vec<PlanId> = (a..b).filter(|&p| x[p as usize]).map(PlanId).collect();
            if chosen.len() == 1 {
                selected_mask[chosen[0].index()] = true;
                plans.push(Some(chosen[0]));
            } else {
                let candidates = if chosen.is_empty() {
                    (a..b).map(PlanId).collect()
                } else {
                    chosen
                };
                violated.push((qi, candidates));
                plans.push(None);
            }
        }
        let repaired = !violated.is_empty();
        // Second pass: greedy marginal-cost repair against the running
        // selection (valid queries plus repairs made so far).
        for (qi, candidates) in violated {
            let best = candidates
                .into_iter()
                .min_by(|&p1, &p2| {
                    let marginal = |p: PlanId| {
                        let mut c = problem.plan_cost(p);
                        for &(p2, s) in problem.savings_of(p) {
                            if selected_mask[p2.index()] {
                                c -= s;
                            }
                        }
                        c
                    };
                    marginal(p1).total_cmp(&marginal(p2))
                })
                .expect("non-empty candidate set");
            selected_mask[best.index()] = true;
            plans[qi] = Some(best);
        }
        let plans = plans
            .into_iter()
            .map(|p| p.expect("every query settled"))
            .collect();
        (Selection::new(plans), repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1 of the paper.
    fn example_problem() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let p2 = b.plans_of(q1)[1];
        let p3 = b.plans_of(q2)[0];
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn weights_match_paper_example() {
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        // wL = max cost + ε = 4.25; wM = wL + max savings sum + ε = 9.5.
        assert_eq!(m.w_l(), 4.25);
        assert_eq!(m.w_m(), 4.25 + 5.0 + 0.25);
    }

    #[test]
    fn qubo_optimum_is_the_mqo_optimum_on_the_paper_example() {
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        let (x, e) = m.qubo().brute_force_minimum();
        // Optimal MQO solution: X1=0, X2=1, X3=1, X4=0 (paper Example 1).
        assert_eq!(x, vec![false, true, true, false]);
        let sel = m.decode_strict(&x).unwrap();
        assert_eq!(p.selection_cost(&sel), 2.0);
        // Energy = cost + offset.
        assert!((e - (2.0 + m.energy_offset())).abs() < 1e-12);
    }

    #[test]
    fn energy_of_every_valid_selection_is_cost_plus_offset() {
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        for p1 in 0u32..2 {
            for p3 in 2u32..4 {
                let sel = Selection::new(vec![PlanId(p1), PlanId(p3)]);
                let x = m.encode(&sel);
                let energy = m.qubo().energy(&x);
                let cost = p.selection_cost(&sel);
                assert!(
                    (energy - (cost + m.energy_offset())).abs() < 1e-12,
                    "selection ({p1},{p3})"
                );
            }
        }
    }

    #[test]
    fn invalid_assignments_have_higher_energy_than_the_valid_optimum() {
        // Lemmas 1 and 2: with properly scaled weights no invalid assignment
        // can undercut the best valid one.
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        let (_, best) = m.qubo().brute_force_minimum();
        for mask in 0u32..16 {
            let x: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
            if m.decode_strict(&x).is_err() {
                assert!(
                    m.qubo().energy(&x) > best + 1e-9,
                    "invalid assignment {x:?} ties or beats the optimum"
                );
            }
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        let sel = Selection::new(vec![PlanId(0), PlanId(3)]);
        let x = m.encode(&sel);
        assert_eq!(x, vec![true, false, false, true]);
        assert_eq!(m.decode_strict(&x).unwrap(), sel);
    }

    #[test]
    fn decode_strict_rejects_invalid_assignments() {
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        assert!(matches!(
            m.decode_strict(&[false, false, true, false]).unwrap_err(),
            CoreError::NoPlanSelected(QueryId(0))
        ));
        assert!(matches!(
            m.decode_strict(&[true, true, true, false]).unwrap_err(),
            CoreError::MultiplePlansSelected(QueryId(0))
        ));
        assert!(matches!(
            m.decode_strict(&[true]).unwrap_err(),
            CoreError::AssignmentLength { .. }
        ));
    }

    #[test]
    fn decode_with_repair_fixes_over_and_under_selection() {
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        // Query 0 over-selected, query 1 under-selected.
        let (sel, repaired) = m.decode_with_repair(&p, &[true, true, false, false]);
        assert!(repaired);
        // Query 0 keeps the cheaper selected plan (cost 2); query 1 gets its
        // cheapest plan (cost 1).
        assert_eq!(sel.plans(), &[PlanId(0), PlanId(3)]);

        // Valid assignment passes through untouched.
        let (sel, repaired) = m.decode_with_repair(&p, &[false, true, true, false]);
        assert!(!repaired);
        assert_eq!(sel.plans(), &[PlanId(1), PlanId(2)]);
    }

    #[test]
    fn var_plan_correspondence_is_identity() {
        let p = example_problem();
        let m = LogicalMapping::new(&p, 0.25);
        for plan in p.plans() {
            assert_eq!(m.plan_of_var(m.var_of_plan(plan)), plan);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        let p = example_problem();
        let _ = LogicalMapping::new(&p, 0.0);
    }

    #[test]
    fn quadratic_term_count_matches_formula() {
        // EM contributes C(l,2) per query; ES one term per saving pair
        // (disjoint from EM pairs since savings within a query are rejected).
        let mut b = MqoProblem::builder();
        let q0 = b.add_query(&[1.0, 2.0, 3.0]); // C(3,2) = 3
        let q1 = b.add_query(&[1.0, 2.0]); // C(2,2) = 1
        let a = b.plans_of(q0)[0];
        let c = b.plans_of(q1)[1];
        b.add_saving(a, c, 1.0).unwrap();
        let p = b.build().unwrap();
        let m = LogicalMapping::new(&p, 0.25);
        assert_eq!(m.qubo().num_quadratic(), 3 + 1 + 1);
    }
}
