//! Topology-free random MQO instances.
//!
//! Used wherever the annealer's coupler structure is irrelevant: unit tests,
//! classical-only benchmarks, and the "problems too large for the annealer"
//! discussion (e.g. the paper's remark that 500 queries with three or more
//! plans per query are routine for classical MQO algorithms but out of reach
//! for 1097 qubits).

use mqo_core::ids::PlanId;
use mqo_core::problem::MqoProblem;
use rand::Rng;

/// Configuration of the generic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWorkloadConfig {
    /// Number of queries.
    pub queries: usize,
    /// Alternative plans per query.
    pub plans_per_query: usize,
    /// Expected number of sharing pairs per query (Erdős–Rényi style over
    /// cross-query plan pairs).
    pub savings_per_query: f64,
    /// Plan costs are uniform integers in `1..=cost_levels`.
    pub cost_levels: u32,
    /// Savings are uniform integers in `1..=saving_levels`, times scale.
    pub saving_levels: u32,
    /// Scale factor on savings.
    pub saving_scale: f64,
}

impl Default for RandomWorkloadConfig {
    fn default() -> Self {
        RandomWorkloadConfig {
            queries: 20,
            plans_per_query: 3,
            savings_per_query: 3.0,
            cost_levels: 10,
            saving_levels: 2,
            saving_scale: 1.0,
        }
    }
}

/// Generates a random instance.
pub fn generate(config: &RandomWorkloadConfig, rng: &mut impl Rng) -> MqoProblem {
    assert!(config.queries >= 1 && config.plans_per_query >= 1);
    let mut b = MqoProblem::builder();
    for _ in 0..config.queries {
        let costs: Vec<f64> = (0..config.plans_per_query)
            .map(|_| f64::from(rng.gen_range(1..=config.cost_levels)))
            .collect();
        b.add_query(&costs);
    }
    let total_plans = config.queries * config.plans_per_query;
    let target_pairs = (config.savings_per_query * config.queries as f64).round() as usize;
    // Skip already-drawn pairs: `add_saving` *accumulates* duplicate
    // entries, which would push savings past `saving_levels * scale`.
    let mut drawn = std::collections::HashSet::new();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < target_pairs && attempts < 50 * target_pairs.max(1) {
        attempts += 1;
        let p1 = PlanId::new(rng.gen_range(0..total_plans));
        let p2 = PlanId::new(rng.gen_range(0..total_plans));
        let s = f64::from(rng.gen_range(1..=config.saving_levels)) * config.saving_scale;
        let key = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        if drawn.contains(&key) {
            continue;
        }
        if b.add_saving(p1, p2, s).is_ok() {
            drawn.insert(key);
            added += 1;
        }
    }
    b.build().expect("generated instance is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_the_requested_shape() {
        let cfg = RandomWorkloadConfig {
            queries: 12,
            plans_per_query: 4,
            ..RandomWorkloadConfig::default()
        };
        let p = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(0));
        assert_eq!(p.num_queries(), 12);
        assert_eq!(p.num_plans(), 48);
        for q in p.queries() {
            assert_eq!(p.num_plans_of(q), 4);
        }
    }

    #[test]
    fn savings_density_tracks_the_configuration() {
        let sparse = generate(
            &RandomWorkloadConfig {
                savings_per_query: 1.0,
                ..RandomWorkloadConfig::default()
            },
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        let dense = generate(
            &RandomWorkloadConfig {
                savings_per_query: 6.0,
                ..RandomWorkloadConfig::default()
            },
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        assert!(dense.num_savings() > sparse.num_savings());
        // Density target is approximate (duplicate draws are skipped, and
        // the attempt budget can run out) but close.
        assert!(dense.num_savings() >= 80);
    }

    #[test]
    fn deterministic_in_the_seed() {
        let cfg = RandomWorkloadConfig::default();
        let a = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(9));
        let b = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_one_plan_queries_work() {
        let cfg = RandomWorkloadConfig {
            queries: 5,
            plans_per_query: 1,
            savings_per_query: 2.0,
            ..RandomWorkloadConfig::default()
        };
        let p = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(p.num_plans(), 5);
        let (sel, _) = p.brute_force_optimum();
        assert!(p.validate_selection(&sel).is_ok());
    }
}
