#![warn(missing_docs)]

//! # mqo-workload
//!
//! Test-case generators for the whole workspace:
//!
//! * [`paper`] — the paper's Section 7.1 generator: queries laid out on a
//!   (defective) Chimera graph via the clustered embedding, savings drawn
//!   uniformly from `{1, 2}·scale` on exactly the plan pairs the hardware
//!   can couple;
//! * [`generic`] — topology-free random instances for classical-only
//!   benchmarks and tests;
//! * [`relational`] — a synthetic analytic batch (join queries with shared
//!   left-deep prefixes) grounding the MQO abstraction in something
//!   database-shaped for the examples.
//!
//! All generators are deterministic in their RNG and return plain
//! [`mqo_core::MqoProblem`] values (plus generator-specific metadata).

pub mod generic;
pub mod paper;
pub mod relational;

pub use generic::RandomWorkloadConfig;
pub use paper::{PaperInstance, PaperWorkloadConfig, WorkloadError};
pub use relational::{RelationalBatch, RelationalConfig};
