//! A synthetic relational workload: the kind of batch the MQO literature
//! motivates (shared scans and join subexpressions across analytic queries,
//! à la SharedDB's "killing one thousand queries with one stone").
//!
//! The generator builds a catalog of tables, a batch of join queries over
//! overlapping table subsets, and several left-deep join orders per query as
//! its alternative plans. Costs come from a textbook cardinality model
//! (fixed join selectivity); two plans of *different* queries that compute
//! the same left-deep prefix can share it, and the saving equals the cost of
//! that prefix. The result is a fully-formed [`MqoProblem`] whose numbers
//! are grounded in something database-shaped rather than raw randomness —
//! used by the domain examples and integration tests.

use mqo_core::ids::{PlanId, QueryId};
use mqo_core::problem::MqoProblem;
use rand::seq::SliceRandom;
use rand::Rng;

/// A base table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Display name (`t0`, `t1`, …).
    pub name: String,
    /// Row count.
    pub rows: f64,
}

/// A join query over a set of tables.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// Ids (catalog indices) of the joined tables.
    pub tables: Vec<usize>,
}

/// One alternative plan: a left-deep join order.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// The query this plan answers.
    pub query: QueryId,
    /// Table ids in join order (first two joined first, rest appended).
    pub order: Vec<usize>,
    /// Modelled execution cost.
    pub cost: f64,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelationalConfig {
    /// Number of base tables in the catalog.
    pub num_tables: usize,
    /// Number of queries in the batch.
    pub num_queries: usize,
    /// Tables joined per query (inclusive range).
    pub tables_per_query: (usize, usize),
    /// Maximum alternative join orders per query.
    pub plans_per_query: usize,
    /// Join selectivity applied per join edge.
    pub selectivity: f64,
    /// Table sizes are log-uniform in this range.
    pub rows_range: (f64, f64),
}

impl Default for RelationalConfig {
    fn default() -> Self {
        RelationalConfig {
            num_tables: 10,
            num_queries: 12,
            tables_per_query: (2, 4),
            plans_per_query: 3,
            // Foreign-key-ish: joining against a table of ~1e6 rows keeps
            // the intermediate near the larger input instead of exploding,
            // so every query contributes comparably to the batch cost.
            selectivity: 2e-6,
            rows_range: (1e3, 1e6),
        }
    }
}

/// A generated batch: catalog, queries, plans, and the MQO problem over
/// them (plan `p` of the problem is `plans[p]`).
#[derive(Debug, Clone)]
pub struct RelationalBatch {
    /// The table catalog.
    pub tables: Vec<Table>,
    /// The queries of the batch.
    pub queries: Vec<JoinQuery>,
    /// All plans, globally indexed to match the problem's plan ids.
    pub plans: Vec<JoinPlan>,
    /// The derived MQO instance.
    pub problem: MqoProblem,
}

impl RelationalBatch {
    /// Human-readable description of a plan (for examples).
    pub fn describe_plan(&self, p: PlanId) -> String {
        let plan = &self.plans[p.index()];
        let order: Vec<&str> = plan
            .order
            .iter()
            .map(|&t| self.tables[t].name.as_str())
            .collect();
        format!(
            "Q{}: {} (cost {:.1})",
            plan.query.index(),
            order.join(" ⋈ "),
            plan.cost
        )
    }
}

/// Cost of the length-`k` left-deep prefix of a join order: scan costs of
/// the touched tables plus the intermediate result sizes.
fn prefix_cost(tables: &[Table], order: &[usize], k: usize, selectivity: f64) -> f64 {
    debug_assert!(k >= 1 && k <= order.len());
    let mut scan: f64 = order[..k].iter().map(|&t| tables[t].rows).sum();
    let mut inter = tables[order[0]].rows;
    for &t in &order[1..k] {
        inter = inter * tables[t].rows * selectivity;
        scan += inter;
    }
    // Normalise to keep costs in a friendly range.
    scan / 1e3
}

/// Length of the longest common left-deep prefix of two join orders
/// (0 or ≥ 2 — a single shared scan is not modelled as shared work here).
fn common_prefix(a: &[usize], b: &[usize]) -> usize {
    let mut k = 0;
    while k < a.len() && k < b.len() && a[k] == b[k] {
        k += 1;
    }
    if k >= 2 {
        k
    } else {
        0
    }
}

/// Generates a relational batch.
pub fn generate(config: &RelationalConfig, rng: &mut impl Rng) -> RelationalBatch {
    assert!(config.num_tables >= config.tables_per_query.1);
    assert!(config.tables_per_query.0 >= 2);
    assert!(config.plans_per_query >= 1);

    let tables: Vec<Table> = (0..config.num_tables)
        .map(|i| {
            let (lo, hi) = config.rows_range;
            let rows = lo * (hi / lo).powf(rng.gen::<f64>());
            Table {
                name: format!("t{i}"),
                rows: rows.round(),
            }
        })
        .collect();

    // Queries over overlapping subsets: weight towards low table ids so
    // different queries hit the same "hot" tables.
    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let size = rng.gen_range(config.tables_per_query.0..=config.tables_per_query.1);
        let mut chosen = Vec::with_capacity(size);
        while chosen.len() < size {
            // Quadratic bias towards small ids ("hot" fact tables).
            let r = rng.gen::<f64>();
            let t = ((r * r) * config.num_tables as f64) as usize;
            let t = t.min(config.num_tables - 1);
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        queries.push(JoinQuery { tables: chosen });
    }

    // Plans: distinct left-deep orders per query; the first plan uses the
    // canonical sorted order, making cross-query prefix sharing likely.
    let mut problem_builder = MqoProblem::builder();
    let mut plans: Vec<JoinPlan> = Vec::new();
    for query in &queries {
        let mut orders: Vec<Vec<usize>> = Vec::new();
        let mut canonical = query.tables.clone();
        canonical.sort_unstable();
        orders.push(canonical);
        let mut attempts = 0;
        while orders.len() < config.plans_per_query && attempts < 32 {
            attempts += 1;
            let mut perm = query.tables.clone();
            perm.shuffle(rng);
            if !orders.contains(&perm) {
                orders.push(perm);
            }
        }
        let costs: Vec<f64> = orders
            .iter()
            .map(|o| prefix_cost(&tables, o, o.len(), config.selectivity))
            .collect();
        let q = problem_builder.add_query(&costs);
        for order in orders {
            let cost = prefix_cost(&tables, &order, order.len(), config.selectivity);
            plans.push(JoinPlan {
                query: q,
                order,
                cost,
            });
        }
    }

    // Savings: common left-deep prefixes across queries.
    for i in 0..plans.len() {
        for j in i + 1..plans.len() {
            if plans[i].query == plans[j].query {
                continue;
            }
            let k = common_prefix(&plans[i].order, &plans[j].order);
            if k >= 2 {
                let saving = prefix_cost(&tables, &plans[i].order, k, config.selectivity);
                problem_builder
                    .add_saving(PlanId::new(i), PlanId::new(j), saving)
                    .expect("cross-query positive saving");
            }
        }
    }

    let problem = problem_builder.build().expect("well-formed batch");
    RelationalBatch {
        tables,
        queries,
        plans,
        problem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn batch_structure_is_consistent() {
        let cfg = RelationalConfig::default();
        let b = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(b.queries.len(), cfg.num_queries);
        assert_eq!(b.problem.num_queries(), cfg.num_queries);
        assert_eq!(b.plans.len(), b.problem.num_plans());
        for (i, plan) in b.plans.iter().enumerate() {
            assert_eq!(b.problem.query_of(PlanId::new(i)), plan.query);
            assert!((b.problem.plan_cost(PlanId::new(i)) - plan.cost).abs() < 1e-9);
            assert!(plan.cost > 0.0);
        }
    }

    #[test]
    fn savings_never_exceed_either_plan_cost() {
        let b = generate(
            &RelationalConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(2),
        );
        for &(p1, p2, s) in b.problem.savings() {
            assert!(s > 0.0);
            assert!(s <= b.problem.plan_cost(p1) + 1e-9);
            assert!(s <= b.problem.plan_cost(p2) + 1e-9);
        }
    }

    #[test]
    fn overlapping_queries_produce_shared_work() {
        let b = generate(
            &RelationalConfig {
                num_queries: 20,
                ..RelationalConfig::default()
            },
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        assert!(
            b.problem.num_savings() > 0,
            "hot-table bias should produce at least one shared prefix"
        );
    }

    #[test]
    fn common_prefix_detection() {
        assert_eq!(common_prefix(&[1, 2, 3], &[1, 2, 4]), 2);
        assert_eq!(common_prefix(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(common_prefix(&[1, 2], &[2, 1]), 0);
        assert_eq!(common_prefix(&[1, 3, 2], &[1, 2, 3]), 0); // single table ≠ shared join
    }

    #[test]
    fn prefix_cost_grows_with_prefix_length() {
        let tables = vec![
            Table {
                name: "a".into(),
                rows: 1000.0,
            },
            Table {
                name: "b".into(),
                rows: 2000.0,
            },
            Table {
                name: "c".into(),
                rows: 500.0,
            },
        ];
        let order = [0, 1, 2];
        let c1 = prefix_cost(&tables, &order, 1, 0.01);
        let c2 = prefix_cost(&tables, &order, 2, 0.01);
        let c3 = prefix_cost(&tables, &order, 3, 0.01);
        assert!(c1 < c2 && c2 < c3);
    }

    #[test]
    fn join_order_matters_for_cost() {
        let tables = vec![
            Table {
                name: "small".into(),
                rows: 10.0,
            },
            Table {
                name: "big".into(),
                rows: 1e6,
            },
            Table {
                name: "mid".into(),
                rows: 1e3,
            },
        ];
        // Starting with the two small tables is cheaper.
        let good = prefix_cost(&tables, &[0, 2, 1], 3, 0.01);
        let bad = prefix_cost(&tables, &[1, 2, 0], 3, 0.01);
        assert!(good < bad);
    }

    #[test]
    fn describe_plan_mentions_tables_in_order() {
        let b = generate(
            &RelationalConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(4),
        );
        let text = b.describe_plan(PlanId(0));
        assert!(text.contains('⋈'));
        assert!(text.starts_with("Q0:"));
    }

    #[test]
    fn deterministic_in_the_seed() {
        let cfg = RelationalConfig::default();
        let a = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(5));
        let b = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a.problem, b.problem);
    }
}
