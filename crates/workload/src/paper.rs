//! The paper's test-case generator (Section 7.1).
//!
//! "We focus on the core optimization problem … We consider test cases that
//! map well to the quantum annealer … We vary the number of queries and
//! query plans … Each query forms one cluster. Cost savings are chosen with
//! uniform distribution from {1, 2} (scaled by a constant)."
//!
//! Concretely: queries are laid out on the (defective) Chimera graph with
//! the clustered pattern; work-sharing pairs are exactly the plan pairs of
//! different queries whose chains share a usable coupler; each such pair
//! gets a saving drawn uniformly from `{1, …, saving_levels} · scale`.
//! Plan execution costs are uniform integers in `1..=cost_levels` (the paper
//! does not specify its cost distribution; integers at a comparable scale to
//! the savings keep plan choice non-trivial, and the level count is a knob).
//!
//! The generator returns the problem *together with* the layout it was built
//! on, so the annealer track reuses the very embedding that shaped the
//! instance — exactly how the paper's pipeline works.

use mqo_chimera::embedding::clustered::{self, ClusteredLayout};
use mqo_chimera::embedding::EmbeddingError;
use mqo_chimera::graph::ChimeraGraph;
use mqo_core::ids::PlanId;
use mqo_core::problem::MqoProblem;
use rand::Rng;

/// Errors of the workload generators — typed, so harnesses and services can
/// react to an impossible topology instead of unwinding through a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The (defective) graph cannot host even one query of the requested
    /// size.
    ZeroCapacity {
        /// Plans per query the caller asked for.
        plans_per_query: usize,
        /// Working qubits the graph offers.
        working_qubits: usize,
    },
    /// Layout construction failed structurally.
    Embedding(EmbeddingError),
    /// The generator configuration is invalid.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::ZeroCapacity {
                plans_per_query,
                working_qubits,
            } => write!(
                f,
                "graph with {working_qubits} working qubits cannot host even one \
                 query of {plans_per_query} plans"
            ),
            WorkloadError::Embedding(e) => write!(f, "layout generation failed: {e}"),
            WorkloadError::InvalidConfig(msg) => {
                write!(f, "invalid workload configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<EmbeddingError> for WorkloadError {
    fn from(e: EmbeddingError) -> Self {
        WorkloadError::Embedding(e)
    }
}

/// Configuration of the paper generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperWorkloadConfig {
    /// Alternative plans per query (the paper sweeps 2..=5).
    pub plans_per_query: usize,
    /// Upper bound on the number of queries; `usize::MAX` fills the graph
    /// (the paper always fills it: 537/253/140/108 queries on its machine).
    pub max_queries: usize,
    /// Plan costs are uniform integers in `1..=cost_levels`.
    pub cost_levels: u32,
    /// Savings are uniform integers in `1..=saving_levels` (paper: 2).
    pub saving_levels: u32,
    /// Constant scale factor applied to savings (the paper's "scaled by a
    /// constant").
    pub saving_scale: f64,
    /// Probability that an available sharing pair receives a saving.
    pub sharing_probability: f64,
}

impl PaperWorkloadConfig {
    /// The paper's class with `plans_per_query` plans, filling the machine.
    pub fn paper_class(plans_per_query: usize) -> Self {
        PaperWorkloadConfig {
            plans_per_query,
            max_queries: usize::MAX,
            cost_levels: 10,
            saving_levels: 2,
            saving_scale: 1.0,
            sharing_probability: 1.0,
        }
    }
}

/// A generated instance: the MQO problem plus the layout/graph that shaped
/// it (plan `p` of the problem is logical variable `p` of the layout).
#[derive(Debug, Clone)]
pub struct PaperInstance {
    /// The MQO problem.
    pub problem: MqoProblem,
    /// The clustered embedding the instance was generated against.
    pub layout: ClusteredLayout,
}

/// Generates one instance on the given (possibly defective) graph.
///
/// Returns [`WorkloadError::ZeroCapacity`] when the graph cannot host a
/// single query of the requested size (the old API panicked here), and
/// [`WorkloadError::InvalidConfig`] for out-of-range knobs.
pub fn generate(
    graph: &ChimeraGraph,
    config: &PaperWorkloadConfig,
    rng: &mut impl Rng,
) -> Result<PaperInstance, WorkloadError> {
    if config.plans_per_query == 0 {
        return Err(WorkloadError::InvalidConfig(
            "plans_per_query must be positive",
        ));
    }
    if config.cost_levels < 1 || config.saving_levels < 1 {
        return Err(WorkloadError::InvalidConfig(
            "cost_levels and saving_levels must be at least 1",
        ));
    }
    if !(0.0..=1.0).contains(&config.sharing_probability) {
        return Err(WorkloadError::InvalidConfig(
            "sharing_probability must lie in [0, 1]",
        ));
    }
    if !(config.saving_scale > 0.0 && config.saving_scale.is_finite()) {
        return Err(WorkloadError::InvalidConfig(
            "saving_scale must be finite and positive",
        ));
    }

    let layout = clustered::layout_uniform(graph, config.max_queries, config.plans_per_query)?;
    if layout.num_clusters == 0 {
        return Err(WorkloadError::ZeroCapacity {
            plans_per_query: config.plans_per_query,
            working_qubits: graph.num_working_qubits(),
        });
    }

    let mut builder = MqoProblem::builder();
    for _ in 0..layout.num_clusters {
        let costs: Vec<f64> = (0..config.plans_per_query)
            .map(|_| f64::from(rng.gen_range(1..=config.cost_levels)))
            .collect();
        builder.add_query(&costs);
    }
    for (a, b) in layout.sharing_pairs(graph) {
        if rng.gen::<f64>() <= config.sharing_probability {
            let s = f64::from(rng.gen_range(1..=config.saving_levels)) * config.saving_scale;
            builder
                .add_saving(PlanId(a.0), PlanId(b.0), s)
                .expect("sharing pairs cross queries by construction");
        }
    }
    let problem = builder.build().expect("generated instance is well-formed");
    Ok(PaperInstance { problem, layout })
}

/// The four test-case classes of the paper's evaluation: plans per query 2,
/// 3, 4, 5 with the maximal query count the (defective) machine supports.
pub const PAPER_CLASSES: [usize; 4] = [2, 3, 4, 5];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_graph() -> ChimeraGraph {
        ChimeraGraph::new(3, 3)
    }

    #[test]
    fn generated_instance_matches_the_layout_structure() {
        let g = small_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = generate(&g, &PaperWorkloadConfig::paper_class(3), &mut rng).unwrap();
        assert_eq!(inst.problem.num_queries(), inst.layout.num_clusters);
        assert_eq!(inst.problem.num_plans(), inst.layout.embedding.num_vars());
        for q in inst.problem.queries() {
            assert_eq!(inst.problem.num_plans_of(q), 3);
        }
    }

    #[test]
    fn savings_sit_only_on_connectable_cross_query_pairs() {
        let g = small_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = generate(&g, &PaperWorkloadConfig::paper_class(2), &mut rng).unwrap();
        let available: std::collections::HashSet<_> = inst
            .layout
            .sharing_pairs(&g)
            .into_iter()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        assert!(!inst.problem.savings().is_empty());
        for &(p1, p2, s) in inst.problem.savings() {
            assert!(
                available.contains(&(p1.0, p2.0)),
                "{p1}-{p2} not realisable"
            );
            assert!(s == 1.0 || s == 2.0, "saving {s} outside {{1,2}}");
        }
    }

    #[test]
    fn full_pipeline_instance_is_physically_mappable() {
        // The decisive end-to-end property: the generated instance's logical
        // QUBO embeds on the very graph it was generated for.
        use mqo_chimera::physical::PhysicalMapping;
        use mqo_core::logical::LogicalMapping;
        let g = small_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = generate(&g, &PaperWorkloadConfig::paper_class(2), &mut rng).unwrap();
        let mapping = LogicalMapping::with_default_epsilon(&inst.problem);
        let pm = PhysicalMapping::new(mapping.qubo(), inst.layout.embedding.clone(), &g, 0.25);
        assert!(pm.is_ok(), "{:?}", pm.err());
    }

    #[test]
    fn broken_qubits_shrink_the_instance_but_keep_it_valid() {
        let g = ChimeraGraph::new(3, 3);
        let intact = {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            generate(&g, &PaperWorkloadConfig::paper_class(5), &mut rng)
                .unwrap()
                .problem
                .num_queries()
        };
        let mut g2 = g.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        g2.break_random_qubits(10, &mut rng);
        let inst = generate(&g2, &PaperWorkloadConfig::paper_class(5), &mut rng).unwrap();
        assert!(inst.problem.num_queries() < intact);
        assert!(inst.problem.num_queries() > 0);
    }

    #[test]
    fn sharing_probability_thins_the_savings() {
        let g = small_graph();
        let mut dense_cfg = PaperWorkloadConfig::paper_class(2);
        dense_cfg.sharing_probability = 1.0;
        let mut sparse_cfg = dense_cfg;
        sparse_cfg.sharing_probability = 0.2;
        let dense = generate(&g, &dense_cfg, &mut ChaCha8Rng::seed_from_u64(6)).unwrap();
        let sparse = generate(&g, &sparse_cfg, &mut ChaCha8Rng::seed_from_u64(6)).unwrap();
        assert!(sparse.problem.num_savings() < dense.problem.num_savings());
    }

    #[test]
    fn saving_scale_multiplies_values() {
        let g = small_graph();
        let mut cfg = PaperWorkloadConfig::paper_class(2);
        cfg.saving_scale = 10.0;
        let inst = generate(&g, &cfg, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        for &(_, _, s) in inst.problem.savings() {
            assert!(s == 10.0 || s == 20.0);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let g = small_graph();
        let cfg = PaperWorkloadConfig::paper_class(3);
        let a = generate(&g, &cfg, &mut ChaCha8Rng::seed_from_u64(8)).unwrap();
        let b = generate(&g, &cfg, &mut ChaCha8Rng::seed_from_u64(8)).unwrap();
        assert_eq!(a.problem, b.problem);
    }

    #[test]
    fn zero_capacity_graphs_yield_a_typed_error_instead_of_a_panic() {
        // Break every qubit of a single-cell graph: nothing can be hosted.
        use mqo_chimera::graph::QubitId;
        let g = ChimeraGraph::new(1, 1);
        let all: Vec<QubitId> = (0..g.num_qubits()).map(|i| QubitId(i as u32)).collect();
        let dead = g.clone().with_broken(&all);
        let err = generate(
            &dead,
            &PaperWorkloadConfig::paper_class(2),
            &mut ChaCha8Rng::seed_from_u64(0),
        )
        .unwrap_err();
        assert_eq!(
            err,
            WorkloadError::ZeroCapacity {
                plans_per_query: 2,
                working_qubits: 0,
            }
        );
    }

    #[test]
    fn invalid_configurations_yield_typed_errors() {
        let g = small_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut cfg = PaperWorkloadConfig::paper_class(2);
        cfg.sharing_probability = 1.5;
        assert!(matches!(
            generate(&g, &cfg, &mut rng),
            Err(WorkloadError::InvalidConfig(_))
        ));
        let mut cfg = PaperWorkloadConfig::paper_class(2);
        cfg.saving_scale = 0.0;
        assert!(matches!(
            generate(&g, &cfg, &mut rng),
            Err(WorkloadError::InvalidConfig(_))
        ));
        let mut cfg = PaperWorkloadConfig::paper_class(2);
        cfg.plans_per_query = 0;
        assert!(matches!(
            generate(&g, &cfg, &mut rng),
            Err(WorkloadError::InvalidConfig(_))
        ));
    }

    #[test]
    fn paper_machine_classes_have_paper_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = ChimeraGraph::dwave_2x_as_used_in_paper(&mut rng);
        let two = generate(&g, &PaperWorkloadConfig::paper_class(2), &mut rng).unwrap();
        assert!(
            two.problem.num_queries() >= 500,
            "{}",
            two.problem.num_queries()
        );
        let five = generate(&g, &PaperWorkloadConfig::paper_class(5), &mut rng).unwrap();
        assert!(
            (80..=144).contains(&five.problem.num_queries()),
            "{}",
            five.problem.num_queries()
        );
    }
}
