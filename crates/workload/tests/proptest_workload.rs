//! Property-based tests of the workload generators.

use mqo_chimera::embedding::clustered;
use mqo_chimera::graph::{ChimeraGraph, QubitId};
use mqo_workload::generic::{self, RandomWorkloadConfig};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use mqo_workload::relational::{self, RelationalConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paper instances are structurally sound for any defect pattern and
    /// plan count: query/plan/savings consistency, savings only on
    /// realisable cross-query pairs, plans per query uniform.
    #[test]
    fn paper_instances_are_sound(
        defects in proptest::collection::hash_set(0u32..72, 0..14),
        plans in 2usize..=5,
        seed in 0u64..500,
    ) {
        let broken: Vec<QubitId> = defects.into_iter().map(QubitId).collect();
        let graph = ChimeraGraph::new(3, 3).with_broken(&broken);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let result = paper::generate(&graph, &PaperWorkloadConfig::paper_class(plans), &mut rng);
        // A defect pattern that leaves no room for even one query must
        // surface as the typed zero-capacity error, never as a panic.
        if clustered::max_uniform_queries(&graph, plans) == 0 {
            prop_assert!(matches!(
                result,
                Err(mqo_workload::WorkloadError::ZeroCapacity { .. })
            ));
            return Ok(());
        }
        let inst = result.expect("graph hosts at least one query");
        prop_assert_eq!(inst.problem.num_queries(), inst.layout.num_clusters);
        prop_assert_eq!(inst.problem.num_plans(), inst.problem.num_queries() * plans);
        for q in inst.problem.queries() {
            prop_assert_eq!(inst.problem.num_plans_of(q), plans);
        }
        let realisable: std::collections::HashSet<(u32, u32)> = inst
            .layout
            .sharing_pairs(&graph)
            .into_iter()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        for &(p1, p2, s) in inst.problem.savings() {
            prop_assert!(realisable.contains(&(p1.0, p2.0)));
            prop_assert!((1.0..=2.0).contains(&s));
            prop_assert_ne!(
                inst.problem.query_of(p1),
                inst.problem.query_of(p2)
            );
        }
    }

    /// Breaking additional qubits never increases clustered capacity.
    #[test]
    fn capacity_is_monotone_in_defects(
        extra in 1usize..10,
        plans in 2usize..=5,
        seed in 0u64..200,
    ) {
        let base = ChimeraGraph::new(3, 3);
        let before = clustered::max_uniform_queries(&base, plans);
        let mut worse = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        worse.break_random_qubits(extra, &mut rng);
        let after = clustered::max_uniform_queries(&worse, plans);
        prop_assert!(after <= before, "capacity grew: {before} -> {after}");
    }

    /// Generic instances respect their configuration for any shape.
    #[test]
    fn generic_instances_match_config(
        queries in 1usize..15,
        plans in 1usize..5,
        density in 0.0f64..6.0,
        seed in 0u64..500,
    ) {
        let cfg = RandomWorkloadConfig {
            queries,
            plans_per_query: plans,
            savings_per_query: density,
            ..RandomWorkloadConfig::default()
        };
        let p = generic::generate(&cfg, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(p.num_queries(), queries);
        prop_assert_eq!(p.num_plans(), queries * plans);
        for &(_, _, s) in p.savings() {
            prop_assert!((1.0..=2.0).contains(&s));
        }
        // A brute-force-checkable invariant on small shapes.
        if queries <= 6 && plans <= 3 {
            let (sel, cost) = p.brute_force_optimum();
            prop_assert!(p.validate_selection(&sel).is_ok());
            prop_assert!((p.selection_cost(&sel) - cost).abs() < 1e-9);
        }
    }

    /// Relational batches always produce positive costs and savings that
    /// undercut both sharing plans, whatever the schema shape.
    #[test]
    fn relational_batches_are_sound(
        tables in 4usize..10,
        queries in 2usize..12,
        plans in 1usize..4,
        seed in 0u64..500,
    ) {
        let cfg = RelationalConfig {
            num_tables: tables,
            num_queries: queries,
            tables_per_query: (2, tables.min(4)),
            plans_per_query: plans,
            ..RelationalConfig::default()
        };
        let batch = relational::generate(&cfg, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(batch.problem.num_queries(), queries);
        for p in batch.problem.plans() {
            prop_assert!(batch.problem.plan_cost(p) > 0.0);
        }
        for &(p1, p2, s) in batch.problem.savings() {
            prop_assert!(s > 0.0);
            prop_assert!(s <= batch.problem.plan_cost(p1) + 1e-9);
            prop_assert!(s <= batch.problem.plan_cost(p2) + 1e-9);
        }
    }
}
