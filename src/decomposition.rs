//! Decomposition: mapping one MQO instance into a *series* of QUBO
//! problems — the extension the paper's conclusion announces as future work
//! ("We will explore approaches that map one MQO problem instance into a
//! series of QUBO problems … which should in principle allow to treat
//! larger problem instances").
//!
//! The scheme is block-coordinate descent over the plan-selection space:
//!
//! 1. start from the greedy selection;
//! 2. partition the queries into blocks small enough for a TRIAD clique
//!    embedding on the device;
//! 3. for each block, build the *conditioned* subproblem — block plans keep
//!    their intra-block savings, while savings towards the fixed plans
//!    outside the block are folded into the plan costs as discounts — and
//!    solve it with one annealer run (one QUBO of the series);
//! 4. accept the block's new plans if they improve the global cost; rotate
//!    the block boundaries and repeat for a configured number of rounds.
//!
//! Every subproblem objective equals the global objective restricted to the
//! block (up to a constant), so accepted moves strictly decrease the global
//! cost and the procedure terminates at a block-optimal selection.

use crate::pipeline::{PipelineError, QuantumMqoSolver};
use mqo_annealer::sampler::Sampler;
use mqo_chimera::embedding::triad;
use mqo_core::ids::{PlanId, QueryId};
use mqo_core::problem::MqoProblem;
use mqo_core::solution::{CostEvaluator, Selection};
use mqo_core::trace::Trace;
use mqo_heuristics::Greedy;
use std::time::Duration;

/// Configuration for [`QuantumMqoSolver::solve_decomposed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompositionConfig {
    /// Block-descent rounds over all queries.
    pub rounds: usize,
    /// Maximum plans per block; 0 = the device's TRIAD clique capacity.
    pub block_plans: usize,
    /// Weight slack for the per-block mappings.
    pub epsilon: f64,
}

impl Default for DecompositionConfig {
    fn default() -> Self {
        DecompositionConfig {
            rounds: 3,
            block_plans: 0,
            epsilon: 0.25,
        }
    }
}

/// Outcome of a decomposed solve.
#[derive(Debug, Clone)]
pub struct DecompositionOutcome {
    /// Best selection found and its cost.
    pub best: (Selection, f64),
    /// Global cost over cumulative simulated device time.
    pub trace: Trace,
    /// QUBO subproblems dispatched to the annealer.
    pub blocks_solved: usize,
    /// Blocks whose annealer solution improved the global selection.
    pub blocks_improved: usize,
    /// Total simulated device time across all subproblem runs.
    pub device_time: Duration,
}

impl<S: Sampler> QuantumMqoSolver<S> {
    /// Solves an MQO instance of (almost) arbitrary size as a series of
    /// annealer-sized QUBO subproblems. Works for any savings structure —
    /// blocks are embedded as TRIAD cliques.
    pub fn solve_decomposed(
        &self,
        problem: &MqoProblem,
        config: &DecompositionConfig,
        seed: u64,
    ) -> Result<DecompositionOutcome, PipelineError> {
        let capacity = triad::max_clique(&self.graph);
        let block_plans = if config.block_plans == 0 {
            capacity
        } else {
            config.block_plans.min(capacity)
        };
        assert!(
            problem
                .queries()
                .all(|q| problem.num_plans_of(q) <= block_plans),
            "a single query must fit one block"
        );

        let initial = Greedy::construct(problem);
        let mut eval = CostEvaluator::new(problem, initial);
        let mut trace = Trace::new();
        let mut device_time = Duration::ZERO;
        trace.record(device_time, eval.cost());

        let mut blocks_solved = 0usize;
        let mut blocks_improved = 0usize;
        let num_queries = problem.num_queries();

        for round in 0..config.rounds {
            // Rotate the partition so block boundaries move between rounds.
            let offset = (round * num_queries / config.rounds.max(1)) % num_queries;
            let order: Vec<QueryId> = (0..num_queries)
                .map(|i| QueryId::new((i + offset) % num_queries))
                .collect();

            let mut improved_this_round = false;
            let mut cursor = 0usize;
            while cursor < order.len() {
                // Grow the block up to the plan budget.
                let mut block = Vec::new();
                let mut plans = 0usize;
                while cursor < order.len() {
                    let q = order[cursor];
                    let l = problem.num_plans_of(q);
                    if plans + l > block_plans && !block.is_empty() {
                        break;
                    }
                    block.push(q);
                    plans += l;
                    cursor += 1;
                }

                let seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((round * 10_000 + cursor) as u64);
                let (sub, block_plan_ids) = self.conditioned_subproblem(problem, &block, &eval);
                let outcome = self.solve(&sub, seed)?;
                blocks_solved += 1;
                device_time += Duration::from_secs_f64(
                    outcome.reads as f64 * self.device.config().time_per_read_us() * 1e-6,
                );

                // Apply the block solution if it improves the global cost.
                let before = eval.cost();
                let previous: Vec<(QueryId, PlanId)> = block
                    .iter()
                    .map(|&q| (q, eval.selection().plan_of(q)))
                    .collect();
                for (k, &q) in block.iter().enumerate() {
                    let local = outcome.best.0.plan_of(QueryId::new(k));
                    eval.apply(q, block_plan_ids[local.index()]);
                }
                if eval.cost() < before - 1e-9 {
                    blocks_improved += 1;
                    improved_this_round = true;
                    trace.record(device_time, eval.cost());
                } else if eval.cost() > before + 1e-9 {
                    // The conditioned optimum can tie but never worsen the
                    // global cost; a worse block means annealer noise —
                    // revert to the previous plans.
                    for &(q, p) in &previous {
                        eval.apply(q, p);
                    }
                }
            }
            if !improved_this_round && round > 0 {
                break;
            }
        }

        let cost = eval.cost();
        Ok(DecompositionOutcome {
            best: (eval.selection().clone(), cost),
            trace,
            blocks_solved,
            blocks_improved,
            device_time,
        })
    }

    /// Builds the block subproblem: block queries with intra-block savings,
    /// and savings towards fixed outside plans folded into the costs (with
    /// a uniform shift keeping costs non-negative). Returns the subproblem
    /// plus the global plan id behind each subproblem plan.
    fn conditioned_subproblem(
        &self,
        problem: &MqoProblem,
        block: &[QueryId],
        eval: &CostEvaluator<'_>,
    ) -> (MqoProblem, Vec<PlanId>) {
        let in_block: std::collections::HashSet<QueryId> = block.iter().copied().collect();
        let selected_outside: Vec<PlanId> = problem
            .queries()
            .filter(|q| !in_block.contains(q))
            .map(|q| eval.selection().plan_of(q))
            .collect();
        let outside: std::collections::HashSet<PlanId> = selected_outside.into_iter().collect();

        // Discounted costs; remember the global ids.
        let mut discounted: Vec<(PlanId, f64)> = Vec::new();
        let mut min_cost: f64 = 0.0;
        for &q in block {
            for p in problem.plans_of(q) {
                let mut c = problem.plan_cost(p);
                for &(p2, s) in problem.savings_of(p) {
                    if outside.contains(&p2) {
                        c -= s;
                    }
                }
                min_cost = min_cost.min(c);
                discounted.push((p, c));
            }
        }
        let shift = -min_cost; // ≥ 0; uniform per plan keeps argmin intact

        let mut b = MqoProblem::builder();
        let mut global_ids = Vec::with_capacity(discounted.len());
        let mut local_of_global = std::collections::HashMap::new();
        let mut idx = 0usize;
        for &q in block {
            let costs: Vec<f64> = problem
                .plans_of(q)
                .map(|_| {
                    let c = discounted[idx].1 + shift;
                    idx += 1;
                    c
                })
                .collect();
            let local_q = b.add_query(&costs);
            for local_p in b.plans_of(local_q) {
                let global_p = discounted[global_ids.len()].0;
                local_of_global.insert(global_p, local_p);
                global_ids.push(global_p);
            }
        }
        // Intra-block savings.
        for &(p1, p2, s) in problem.savings() {
            if let (Some(&l1), Some(&l2)) = (local_of_global.get(&p1), local_of_global.get(&p2)) {
                b.add_saving(l1, l2, s).expect("valid intra-block saving");
            }
        }
        (b.build().expect("well-formed subproblem"), global_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
    use mqo_annealer::sqa::PathIntegralQmcSampler;
    use mqo_chimera::graph::ChimeraGraph;
    use mqo_milp::{bb_mqo, MqoBbConfig};
    use mqo_workload::generic::{self, RandomWorkloadConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn solver(cells: usize) -> QuantumMqoSolver<PathIntegralQmcSampler> {
        QuantumMqoSolver::new(
            ChimeraGraph::new(cells, cells),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 60,
                    num_gauges: 6,
                    ..DeviceConfig::default()
                },
                PathIntegralQmcSampler::default(),
            ),
        )
    }

    fn big_problem(queries: usize, seed: u64) -> MqoProblem {
        generic::generate(
            &RandomWorkloadConfig {
                queries,
                plans_per_query: 3,
                savings_per_query: 3.0,
                ..RandomWorkloadConfig::default()
            },
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
    }

    #[test]
    fn decomposition_handles_problems_too_large_for_one_qubo() {
        // 30 queries × 3 plans = 90 plans; a 2×2 device hosts K8 cliques,
        // so a monolithic embedding is impossible but decomposition works.
        let problem = big_problem(30, 1);
        let s = solver(2);
        assert!(s.solve(&problem, 0).is_err(), "monolithic must fail");
        let out = s
            .solve_decomposed(&problem, &DecompositionConfig::default(), 0)
            .unwrap();
        assert!(problem.validate_selection(&out.best.0).is_ok());
        assert!((problem.selection_cost(&out.best.0) - out.best.1).abs() < 1e-9);
        assert!(out.blocks_solved >= 30 / 2);
    }

    #[test]
    fn decomposition_never_loses_to_greedy_and_improves_it() {
        let problem = big_problem(24, 2);
        let greedy_cost = problem.selection_cost(&Greedy::construct(&problem));
        let out = solver(2)
            .solve_decomposed(&problem, &DecompositionConfig::default(), 3)
            .unwrap();
        assert!(
            out.best.1 <= greedy_cost + 1e-9,
            "{} vs greedy {greedy_cost}",
            out.best.1
        );
        assert!(out.blocks_improved > 0, "should refine greedy somewhere");
    }

    #[test]
    fn decomposition_gets_close_to_the_exact_optimum() {
        let problem = big_problem(16, 3);
        let exact = bb_mqo::solve(&problem, &MqoBbConfig::default());
        let optimum = exact.best.unwrap().1;
        let out = solver(3)
            .solve_decomposed(
                &problem,
                &DecompositionConfig {
                    rounds: 4,
                    ..DecompositionConfig::default()
                },
                7,
            )
            .unwrap();
        let gap = (out.best.1 - optimum) / optimum.abs().max(1e-9);
        assert!(
            gap <= 0.05,
            "decomposed {} vs optimum {optimum} (gap {:.1}%)",
            out.best.1,
            gap * 100.0
        );
    }

    #[test]
    fn trace_is_monotone_and_timed_in_device_microseconds() {
        let problem = big_problem(20, 4);
        let out = solver(2)
            .solve_decomposed(&problem, &DecompositionConfig::default(), 1)
            .unwrap();
        let pts = out.trace.points();
        assert!(!pts.is_empty());
        assert!(pts.windows(2).all(|w| w[1].value < w[0].value));
        assert_eq!(out.device_time.as_micros() % 376, 0);
        assert!(out.device_time >= pts.last().unwrap().elapsed);
    }

    #[test]
    fn conditioned_subproblem_matches_global_objective_up_to_constant() {
        let problem = big_problem(8, 5);
        let s = solver(3);
        let eval = CostEvaluator::new(&problem, Greedy::construct(&problem));
        let block: Vec<QueryId> = vec![QueryId(1), QueryId(4)];
        let (sub, globals) = s.conditioned_subproblem(&problem, &block, &eval);
        assert_eq!(sub.num_queries(), 2);
        assert_eq!(globals.len(), 6);

        // For every joint block choice, global Δcost must equal sub Δcost.
        let mut base_sel = eval.selection().clone();
        let sub_of = |a: usize, b: usize| {
            let plans = vec![
                sub.plans_of(QueryId(0)).nth(a).unwrap(),
                sub.plans_of(QueryId(1)).nth(b).unwrap(),
            ];
            sub.plan_set_cost(&plans)
        };
        let mut reference: Option<f64> = None;
        for a in 0..3 {
            for bidx in 0..3 {
                base_sel.set_plan(block[0], problem.plans_of(block[0]).nth(a).unwrap());
                base_sel.set_plan(block[1], problem.plans_of(block[1]).nth(bidx).unwrap());
                let global = problem.selection_cost(&base_sel);
                let local = sub_of(a, bidx);
                let diff = global - local;
                match reference {
                    None => reference = Some(diff),
                    Some(r) => assert!(
                        (diff - r).abs() < 1e-9,
                        "conditioning broke the objective: {diff} vs {r}"
                    ),
                }
            }
        }
    }
}
