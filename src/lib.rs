#![warn(missing_docs)]

//! # mqo — Multiple Query Optimization on a (simulated) adiabatic quantum annealer
//!
//! A from-scratch Rust reproduction of *Multiple Query Optimization on the
//! D-Wave 2X Adiabatic Quantum Computer* (Trummer & Koch, PVLDB 9(9), 2016).
//!
//! The workspace implements the paper's entire pipeline (Algorithm 1) plus
//! every substrate its evaluation depends on:
//!
//! | crate | contents |
//! |---|---|
//! | [`mqo_core`] | MQO problem model, QUBO/Ising formalisms, logical mapping (Section 4), anytime traces |
//! | [`mqo_chimera`] | Chimera topology, TRIAD/clustered embeddings, physical mapping (Section 5), capacity analysis (Section 6) |
//! | [`mqo_annealer`] | simulated D-Wave 2X: SA / path-integral-QMC samplers, gauges, control-error noise, read protocol & timing |
//! | [`mqo_milp`] | simplex + branch-and-bound: the ILP baselines LIN-MQO and LIN-QUB |
//! | [`mqo_heuristics`] | hill climbing, the paper-configured genetic algorithm, greedy |
//! | [`mqo_workload`] | the paper's generator, generic random instances, a relational join batch |
//!
//! This facade crate re-exports them and adds [`pipeline::QuantumMqoSolver`],
//! the assembled Algorithm 1. See `examples/quickstart.rs` for a guided tour
//! and `crates/bench` for the harness regenerating every table and figure of
//! the paper's evaluation.
//!
//! ```
//! use mqo::prelude::*;
//!
//! // Example 1 from the paper.
//! let mut b = MqoProblem::builder();
//! let q1 = b.add_query(&[2.0, 4.0]);
//! let q2 = b.add_query(&[3.0, 1.0]);
//! let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
//! b.add_saving(p2, p3, 5.0).unwrap();
//! let problem = b.build().unwrap();
//!
//! // Solve it on the simulated annealer...
//! let solver = QuantumMqoSolver::new(
//!     ChimeraGraph::new(2, 2),
//!     QuantumAnnealer::new(
//!         DeviceConfig { num_reads: 30, num_gauges: 3, ..DeviceConfig::default() },
//!         SimulatedAnnealingSampler::default(),
//!     ),
//! );
//! let quantum = solver.solve(&problem, 7).unwrap();
//! assert_eq!(quantum.best.1, 2.0);
//!
//! // ...and classically, for comparison.
//! let classical = mqo::milp::bb_mqo::solve(&problem, &Default::default());
//! assert_eq!(classical.best.unwrap().1, 2.0);
//! ```

pub use mqo_annealer as annealer;
pub use mqo_chimera as chimera;
pub use mqo_core as core;
pub use mqo_heuristics as heuristics;
pub use mqo_milp as milp;
pub use mqo_workload as workload;

pub mod decomposition;
pub mod pipeline;

/// One-stop imports for the common pipeline types.
pub mod prelude {
    pub use crate::decomposition::{DecompositionConfig, DecompositionOutcome};
    pub use crate::pipeline::{
        PackedInstance, PipelineError, QuantumMqoOutcome, QuantumMqoSolver, ResilienceConfig,
    };
    pub use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
    pub use mqo_annealer::faults::{FaultConfig, FaultEvents};
    pub use mqo_annealer::sa::SimulatedAnnealingSampler;
    pub use mqo_annealer::sqa::PathIntegralQmcSampler;
    pub use mqo_chimera::graph::ChimeraGraph;
    pub use mqo_core::problem::MqoProblem;
    pub use mqo_core::solution::Selection;
    pub use mqo_core::trace::Trace;
    pub use mqo_heuristics::{AnytimeHeuristic, GeneticAlgorithm, Greedy, HillClimbing};
}
