//! Algorithm 1 of the paper, end to end:
//!
//! ```text
//! function QuantumMQO(M)
//!     lef ← LogicalMapping(M)          // mqo-core
//!     pef ← PhysicalMapping(lef)       // mqo-chimera
//!     bi  ← QuantumAnnealing(pef)      // mqo-annealer
//!     Xp  ← PhysicalMapping⁻¹(bi)      // unembedding
//!     Pe  ← LogicalMapping⁻¹(Xp)       // decode to plan selection
//!     return Pe
//! ```
//!
//! [`QuantumMqoSolver`] wires the crates together and converts the device's
//! read stream into an MQO-cost-over-device-time [`Trace`], the quantity
//! Figures 4 and 5 plot for the "QA" series.

use mqo_annealer::device::{DeviceError, QuantumAnnealer};
use mqo_annealer::sampler::Sampler;
use mqo_chimera::embedding::triad;
use mqo_chimera::embedding::{Embedding, EmbeddingError};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::logical::LogicalMapping;
use mqo_core::problem::MqoProblem;
use mqo_core::solution::Selection;
use mqo_core::trace::Trace;
use rand::SeedableRng;
use std::time::Duration;

/// Everything that can go wrong between an MQO instance and annealer reads.
#[derive(Debug)]
pub enum PipelineError {
    /// The problem could not be embedded on the device graph.
    Embedding(EmbeddingError),
    /// The physical formula could not be programmed or run.
    Device(DeviceError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Embedding(e) => write!(f, "embedding failed: {e}"),
            PipelineError::Device(e) => write!(f, "device run failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<EmbeddingError> for PipelineError {
    fn from(e: EmbeddingError) -> Self {
        PipelineError::Embedding(e)
    }
}

impl From<DeviceError> for PipelineError {
    fn from(e: DeviceError) -> Self {
        PipelineError::Device(e)
    }
}

/// Result of one quantum-annealing MQO run.
#[derive(Debug, Clone)]
pub struct QuantumMqoOutcome {
    /// Best valid selection over all reads, with its execution cost.
    pub best: (Selection, f64),
    /// MQO cost of the best-so-far read as a function of *simulated device
    /// time* (376 µs per read by default).
    pub trace: Trace,
    /// Total reads performed.
    pub reads: usize,
    /// Reads whose decoded assignment violated one-plan-per-query and
    /// needed repair.
    pub repaired_reads: usize,
    /// Reads containing at least one broken chain.
    pub broken_chain_reads: usize,
    /// Physical qubits consumed by the embedding.
    pub qubits_used: usize,
}

/// The assembled Algorithm-1 solver.
#[derive(Debug, Clone)]
pub struct QuantumMqoSolver<S> {
    /// The device topology (including broken qubits).
    pub graph: ChimeraGraph,
    /// The device model (protocol + annealing back-end).
    pub device: QuantumAnnealer<S>,
    /// Weight slack `ε` for both mapping stages (paper: 0.25).
    pub epsilon: f64,
}

impl<S: Sampler> QuantumMqoSolver<S> {
    /// Creates a solver with the paper's `ε = 0.25`.
    pub fn new(graph: ChimeraGraph, device: QuantumAnnealer<S>) -> Self {
        QuantumMqoSolver {
            graph,
            device,
            epsilon: 0.25,
        }
    }

    /// Solves using an explicit embedding (e.g. the clustered layout the
    /// workload generator produced). `embedding` must assign chains to
    /// exactly the problem's plans, in plan-id order.
    pub fn solve_with_embedding(
        &self,
        problem: &MqoProblem,
        embedding: Embedding,
        seed: u64,
    ) -> Result<QuantumMqoOutcome, PipelineError> {
        let logical = LogicalMapping::new(problem, self.epsilon);
        let physical = PhysicalMapping::new(logical.qubo(), embedding, &self.graph, self.epsilon)?;
        let samples = self.device.run(&physical, &self.graph, seed)?;

        let mut trace = Trace::new();
        let mut best: Option<(Selection, f64)> = None;
        let mut repaired_reads = 0;
        let mut broken_chain_reads = 0;
        for read in samples.reads() {
            let unembedded = physical.unembed(&read.assignment);
            if unembedded.broken_chains > 0 {
                broken_chain_reads += 1;
            }
            let (selection, repaired) = logical.decode_with_repair(problem, &unembedded.logical);
            if repaired {
                repaired_reads += 1;
            }
            let cost = problem.selection_cost(&selection);
            let elapsed = Duration::from_secs_f64(read.elapsed_us * 1e-6);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                trace.record(elapsed, cost);
                best = Some((selection, cost));
            }
        }

        Ok(QuantumMqoOutcome {
            best: best.expect("device returns at least one read"),
            trace,
            reads: samples.len(),
            repaired_reads,
            broken_chain_reads,
            qubits_used: physical.num_physical_vars(),
        })
    }

    /// Solves a small problem by embedding it as one global TRIAD clique
    /// (works for any savings structure, up to `4·min(rows, cols)` plans).
    pub fn solve(
        &self,
        problem: &MqoProblem,
        seed: u64,
    ) -> Result<QuantumMqoOutcome, PipelineError> {
        let embedding = triad::triad(&self.graph, 0, 0, problem.num_plans())?;
        self.solve_with_embedding(problem, embedding, seed)
    }

    /// Solves using the heuristic sparse minor embedder instead of a TRIAD
    /// clique: only the instance's *actual* interaction edges are routed, so
    /// sparse problems far beyond the clique capacity still fit on the chip
    /// (the "new mapping algorithms" direction of the paper's Section 7).
    pub fn solve_sparse(
        &self,
        problem: &MqoProblem,
        seed: u64,
        tries: usize,
    ) -> Result<QuantumMqoOutcome, PipelineError> {
        let logical = LogicalMapping::new(problem, self.epsilon);
        let edges: Vec<_> = logical
            .qubo()
            .quadratic()
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xE3BE);
        let embedding = mqo_chimera::embedding::heuristic::find_embedding(
            logical.qubo().num_vars(),
            &edges,
            &self.graph,
            &mut rng,
            tries,
        )?;
        self.solve_with_embedding(problem, embedding, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_annealer::device::DeviceConfig;
    use mqo_annealer::sa::SimulatedAnnealingSampler;

    fn paper_example() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    fn solver() -> QuantumMqoSolver<SimulatedAnnealingSampler> {
        QuantumMqoSolver::new(
            ChimeraGraph::new(2, 2),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 50,
                    num_gauges: 5,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        )
    }

    #[test]
    fn algorithm_1_solves_the_paper_example() {
        let problem = paper_example();
        let out = solver().solve(&problem, 11).unwrap();
        let (selection, cost) = out.best;
        assert_eq!(cost, 2.0);
        assert_eq!(problem.selection_cost(&selection), 2.0);
        assert_eq!(out.reads, 50);
        assert!(out.qubits_used >= problem.num_plans());
    }

    #[test]
    fn trace_uses_device_time_quanta() {
        let problem = paper_example();
        let out = solver().solve(&problem, 3).unwrap();
        let first = out.trace.points().first().unwrap();
        // First read completes after exactly one anneal+readout cycle.
        assert_eq!(first.elapsed, Duration::from_secs_f64(376e-6));
    }

    #[test]
    fn solve_sparse_handles_instances_beyond_the_clique_capacity() {
        // 12 queries × 2 plans = 24 vars: a 3×3 graph caps TRIAD at K12,
        // but a chain-structured savings graph routes fine (the greedy
        // embedder needs head-room; it does no chain ripping).
        let mut b = MqoProblem::builder();
        let mut prev = None;
        for i in 0..12 {
            let q = b.add_query(&[2.0 + (i % 2) as f64, 3.0]);
            let plans = b.plans_of(q);
            if let Some(p) = prev {
                b.add_saving(p, plans[1], 2.0).unwrap();
            }
            prev = Some(plans[1]);
        }
        let problem = b.build().unwrap();
        let s = QuantumMqoSolver::new(
            ChimeraGraph::new(3, 3),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 50,
                    num_gauges: 5,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        );
        assert!(s.solve(&problem, 0).is_err(), "clique embedding must fail");
        let out = s.solve_sparse(&problem, 3, 16).expect("sparse embeds");
        assert!(problem.validate_selection(&out.best.0).is_ok());
        let (_, optimum) = problem.brute_force_optimum();
        assert!(out.best.1 <= optimum + 2.0 + 1e-9);
    }

    #[test]
    fn problems_too_large_for_the_graph_are_rejected() {
        // 2×2 cells host at most K8 as one TRIAD.
        let mut b = MqoProblem::builder();
        for _ in 0..5 {
            b.add_query(&[1.0, 2.0]);
        }
        let problem = b.build().unwrap();
        let err = solver().solve(&problem, 0).unwrap_err();
        assert!(matches!(err, PipelineError::Embedding(_)));
    }
}
