//! Algorithm 1 of the paper, end to end:
//!
//! ```text
//! function QuantumMQO(M)
//!     lef ← LogicalMapping(M)          // mqo-core
//!     pef ← PhysicalMapping(lef)       // mqo-chimera
//!     bi  ← QuantumAnnealing(pef)      // mqo-annealer
//!     Xp  ← PhysicalMapping⁻¹(bi)      // unembedding
//!     Pe  ← LogicalMapping⁻¹(Xp)       // decode to plan selection
//!     return Pe
//! ```
//!
//! [`QuantumMqoSolver`] wires the crates together and converts the device's
//! read stream into an MQO-cost-over-device-time [`Trace`], the quantity
//! Figures 4 and 5 plot for the "QA" series.
//!
//! **Fault tolerance** (DESIGN.md §7). The device may misbehave when fault
//! injection is enabled: gauge programmings get rejected, qubits drop dead
//! mid-run, reads come back flipped or stuck. [`ResilienceConfig`] governs
//! how the solver reacts: rejected programmings are retried with a backoff
//! charged in *simulated device time*; qubit dropout triggers a
//! re-embedding around the newly-dead qubits on a degraded copy of the
//! graph; and when the retry budget is exhausted, iterated hill climbing
//! takes over from the best repaired sample so the solver still returns a
//! valid selection. Every fault, retry, re-embedding, and fallback is
//! counted in [`QuantumMqoOutcome`].

use mqo_annealer::composite::{self, PackedTenant};
use mqo_annealer::device::{DeviceError, QuantumAnnealer};
use mqo_annealer::faults::FaultEvents;
use mqo_annealer::parallel::{derive_seed, STREAM_RETRY};
use mqo_annealer::sampler::{ChainBreakStats, SampleSet, Sampler};
use mqo_chimera::embedding::triad;
use mqo_chimera::embedding::{Embedding, EmbeddingError};
use mqo_chimera::graph::{ChimeraGraph, QubitId};
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::integrity::RepairStats;
use mqo_core::logical::LogicalMapping;
use mqo_core::problem::MqoProblem;
use mqo_core::solution::Selection;
use mqo_core::trace::Trace;
use mqo_heuristics::HillClimbing;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Everything that can go wrong between an MQO instance and annealer reads.
#[derive(Debug)]
pub enum PipelineError {
    /// The problem could not be embedded on the device graph.
    Embedding(EmbeddingError),
    /// The physical formula could not be programmed or run.
    Device(DeviceError),
    /// Every device attempt failed, the retry budget ran out, and the
    /// classical fallback was disabled.
    RetriesExhausted {
        /// Device runs attempted (the initial run plus retries).
        attempts: usize,
        /// The error of the last failed attempt.
        last: DeviceError,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Embedding(e) => write!(f, "embedding failed: {e}"),
            PipelineError::Device(e) => write!(f, "device run failed: {e}"),
            PipelineError::RetriesExhausted { attempts, last } => write!(
                f,
                "device retry budget exhausted after {attempts} attempts \
                 (last error: {last}); classical fallback disabled"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<EmbeddingError> for PipelineError {
    fn from(e: EmbeddingError) -> Self {
        PipelineError::Embedding(e)
    }
}

impl From<DeviceError> for PipelineError {
    fn from(e: DeviceError) -> Self {
        PipelineError::Device(e)
    }
}

/// Fault-tolerance policy of [`QuantumMqoSolver`].
///
/// On a clean run (fault injection disabled) the policy is inert — no
/// retries, re-embeddings, or fallbacks trigger, and results are
/// bit-identical to the pre-resilience pipeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct ResilienceConfig {
    /// Full device re-runs after a run aborted by rejected programmings
    /// (`0` disables retrying).
    pub max_retries: usize,
    /// Simulated device time charged per such re-run, microseconds.
    pub retry_backoff_us: f64,
    /// Re-embedding rounds allowed after qubit dropout (`0` keeps the
    /// degraded results instead of re-running).
    pub max_reembeds: usize,
    /// Attempts of the heuristic sparse embedder per re-embedding round.
    pub reembed_tries: usize,
    /// Fall back to iterated hill climbing when no device attempt produced
    /// a sample set.
    pub classical_fallback: bool,
    /// Random restarts of the classical fallback.
    pub fallback_restarts: usize,
    /// Wall-clock guard on the classical fallback.
    pub fallback_budget: Duration,
    /// Bounded greedy-descent moves applied to each *repaired* (infeasible)
    /// decoded sample after its min-delta settle (`0` disables the descent
    /// phase). Bounded by move count — never wall clock — so repair output
    /// is bit-identical across thread counts and hosts. Clean decodes are
    /// never touched.
    pub repair_descent_moves: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_retries: 2,
            retry_backoff_us: 10_000.0,
            max_reembeds: 1,
            reembed_tries: 8,
            classical_fallback: true,
            fallback_restarts: 4,
            fallback_budget: Duration::from_millis(250),
            repair_descent_moves: 4,
        }
    }
}

/// Result of one quantum-annealing MQO run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QuantumMqoOutcome {
    /// Best valid selection over all reads, with its execution cost.
    pub best: (Selection, f64),
    /// MQO cost of the best-so-far read as a function of *simulated device
    /// time* (376 µs per read by default, plus injected backoff delays).
    pub trace: Trace,
    /// Total reads performed, across all device runs.
    pub reads: usize,
    /// Reads whose decoded assignment violated one-plan-per-query and
    /// needed repair.
    pub repaired_reads: usize,
    /// Reads containing at least one broken chain.
    pub broken_chain_reads: usize,
    /// Physical qubits consumed by the (final) embedding.
    pub qubits_used: usize,
    /// Fault events injected across all device runs (empty when fault
    /// injection is disabled).
    pub faults: FaultEvents,
    /// Full device re-runs forced by rejected programming cycles.
    pub retries: usize,
    /// Re-embedding rounds performed after qubit dropout.
    pub reembeds: usize,
    /// Whether the classical fallback produced (or had to defend) the final
    /// answer because the device retry budget ran out.
    pub fallback: bool,
    /// Per-chain break statistics of the final successful device run.
    pub chain_breaks: ChainBreakStats,
    /// Integrity accounting over all decoded reads: `verified_clean` decodes
    /// were feasible as sampled, `repaired` needed the min-delta settle (and
    /// optional bounded descent), `rejected` is always 0 in the pipeline —
    /// every read of the right length is repairable (service layers count
    /// rejections at their own gate).
    pub integrity: RepairStats,
    /// Greedy-descent moves applied across all repaired reads (bounded per
    /// read by [`ResilienceConfig::repair_descent_moves`]).
    pub repair_descent_moves: usize,
}

/// The assembled Algorithm-1 solver.
#[derive(Debug, Clone)]
pub struct QuantumMqoSolver<S> {
    /// The device topology (including broken qubits).
    pub graph: ChimeraGraph,
    /// The device model (protocol + annealing back-end).
    pub device: QuantumAnnealer<S>,
    /// Weight slack `ε` for both mapping stages (paper: 0.25).
    pub epsilon: f64,
    /// Fault-tolerance policy (inert on clean runs).
    pub resilience: ResilienceConfig,
}

impl<S: Sampler> QuantumMqoSolver<S> {
    /// Creates a solver with the paper's `ε = 0.25` and the default
    /// resilience policy.
    pub fn new(graph: ChimeraGraph, device: QuantumAnnealer<S>) -> Self {
        QuantumMqoSolver {
            graph,
            device,
            epsilon: 0.25,
            resilience: ResilienceConfig::default(),
        }
    }

    /// Replaces the resilience policy (builder style).
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Solves using an explicit embedding (e.g. the clustered layout the
    /// workload generator produced). `embedding` must assign chains to
    /// exactly the problem's plans, in plan-id order.
    ///
    /// Resilient execution: rejected programmings are retried (bounded by
    /// [`ResilienceConfig::max_retries`]); qubit dropout triggers a
    /// re-embedding around the dead qubits; and if no device attempt ever
    /// yields samples, the classical fallback answers (or, when disabled,
    /// [`PipelineError::RetriesExhausted`] is returned). Structural errors
    /// — a non-embeddable problem, couplings off the hardware graph, a
    /// degenerate device configuration — fail fast: retrying cannot help.
    pub fn solve_with_embedding(
        &self,
        problem: &MqoProblem,
        embedding: Embedding,
        seed: u64,
    ) -> Result<QuantumMqoOutcome, PipelineError> {
        let logical = LogicalMapping::new(problem, self.epsilon);
        let r = self.resilience;
        let edges: Vec<_> = logical
            .qubo()
            .quadratic()
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect();

        let mut graph = self.graph.clone();
        let mut embedding = embedding;
        let mut trace = Trace::new();
        let mut best: Option<(Selection, f64)> = None;
        let mut reads = 0usize;
        let mut repaired_reads = 0usize;
        let mut broken_chain_reads = 0usize;
        let mut qubits_used = 0usize;
        let mut faults = FaultEvents::default();
        let mut retries = 0usize;
        let mut reembeds = 0usize;
        let mut descent_moves = 0usize;
        let mut chain_breaks = ChainBreakStats::default();
        let mut offset_us = 0.0f64;
        let mut attempt = 0u64;
        let mut exhausted = false;
        let mut last_device_err: Option<DeviceError> = None;

        loop {
            let physical =
                match PhysicalMapping::new(logical.qubo(), embedding.clone(), &graph, self.epsilon)
                {
                    Ok(p) => p,
                    // The caller's embedding failing to program is fatal; a
                    // re-embedding that does is abandoned, keeping the results
                    // gathered so far.
                    Err(e) if attempt == 0 => return Err(e.into()),
                    Err(_) => break,
                };
            let run_seed = if attempt == 0 {
                seed
            } else {
                derive_seed(seed, STREAM_RETRY, attempt, 0)
            };
            match self.device.run(&physical, &graph, run_seed) {
                Ok(samples) => {
                    qubits_used = physical.num_physical_vars();
                    let run_end_us =
                        offset_us + samples.reads().last().map_or(0.0, |r| r.elapsed_us);
                    absorb_reads(
                        problem,
                        &logical,
                        &physical,
                        &samples,
                        offset_us,
                        r.repair_descent_moves,
                        &mut best,
                        &mut trace,
                        &mut repaired_reads,
                        &mut broken_chain_reads,
                        &mut descent_moves,
                    );
                    reads += samples.len();
                    chain_breaks = samples.chain_break_stats(&physical.dense_chains());
                    let dropped = samples.faults().dropped_qubits.clone();
                    faults.merge(samples.faults());
                    offset_us = run_end_us;
                    if !dropped.is_empty() && reembeds < r.max_reembeds {
                        // Re-embed around the newly-dead qubits and run
                        // again; the broken-qubit-aware embedders route
                        // around them.
                        let dead: Vec<QubitId> =
                            dropped.iter().map(|&p| physical.qubit_of_phys(p)).collect();
                        graph = graph.with_broken(&dead);
                        let mut rng =
                            ChaCha8Rng::seed_from_u64(derive_seed(seed, STREAM_RETRY, attempt, 1));
                        match mqo_chimera::embedding::reembed(
                            &graph,
                            logical.qubo().num_vars(),
                            &edges,
                            &mut rng,
                            r.reembed_tries.max(1),
                        ) {
                            Ok(next) => {
                                embedding = next;
                                reembeds += 1;
                                attempt += 1;
                                continue;
                            }
                            // The degraded graph no longer embeds the
                            // problem; keep what we have.
                            Err(_) => break,
                        }
                    }
                    break;
                }
                Err(err @ DeviceError::ProgrammingFailed { attempts, .. }) => {
                    // All attempts of the failed run were rejected
                    // programmings; account for them even though the run
                    // produced no samples.
                    faults.programming_rejects += attempts;
                    last_device_err = Some(err);
                    if retries < r.max_retries {
                        retries += 1;
                        attempt += 1;
                        offset_us += r.retry_backoff_us;
                        continue;
                    }
                    exhausted = true;
                    break;
                }
                // Structural failures are not transient; fail fast.
                Err(e) => return Err(e.into()),
            }
        }

        let (best, fallback) = if exhausted {
            if r.classical_fallback {
                let climbed =
                    self.fallback_climb(problem, best.as_ref().map(|(s, _)| s.clone()), seed);
                let elapsed_us = offset_us + self.device.config().time_per_read_us();
                trace.record(Duration::from_secs_f64(elapsed_us * 1e-6), climbed.1);
                let merged = match best {
                    Some(b) if b.1 <= climbed.1 => b,
                    _ => climbed,
                };
                (merged, true)
            } else if let Some(b) = best {
                (b, false)
            } else {
                return Err(PipelineError::RetriesExhausted {
                    attempts: retries + 1,
                    last: last_device_err.expect("exhausted retries imply a device error"),
                });
            }
        } else {
            (
                best.expect("a successful device run yields at least one read"),
                false,
            )
        };

        Ok(QuantumMqoOutcome {
            best,
            trace,
            reads,
            repaired_reads,
            broken_chain_reads,
            qubits_used,
            faults,
            retries,
            reembeds,
            fallback,
            chain_breaks,
            integrity: RepairStats {
                verified_clean: reads - repaired_reads,
                repaired: repaired_reads,
                rejected: 0,
            },
            repair_descent_moves: descent_moves,
        })
    }

    /// Iterated hill climbing used when the device never yields samples:
    /// climbs from the best repaired device sample when one exists (first
    /// plan of every query otherwise), then from seeded random restarts.
    fn fallback_climb(
        &self,
        problem: &MqoProblem,
        start: Option<Selection>,
        seed: u64,
    ) -> (Selection, f64) {
        let r = self.resilience;
        let deadline = Instant::now() + r.fallback_budget;
        let start = start.unwrap_or_else(|| {
            Selection::new(
                problem
                    .queries()
                    .map(|q| {
                        problem
                            .plans_of(q)
                            .next()
                            .expect("every query has at least one plan")
                    })
                    .collect(),
            )
        });
        let (mut best_sel, mut best_cost) = HillClimbing::climb(problem, start, deadline);
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, STREAM_RETRY, u64::MAX, 0));
        for _ in 0..r.fallback_restarts {
            if Instant::now() >= deadline {
                break;
            }
            let candidate = Selection::new(
                problem
                    .queries()
                    .map(|q| {
                        let k = rng.gen_range(0..problem.num_plans_of(q));
                        problem.plans_of(q).nth(k).expect("plan index in range")
                    })
                    .collect(),
            );
            let (sel, cost) = HillClimbing::climb(problem, candidate, deadline);
            if cost < best_cost {
                best_sel = sel;
                best_cost = cost;
            }
        }
        (best_sel, best_cost)
    }

    /// Solves a small problem by embedding it as one global TRIAD clique
    /// (works for any savings structure, up to `4·min(rows, cols)` plans).
    pub fn solve(
        &self,
        problem: &MqoProblem,
        seed: u64,
    ) -> Result<QuantumMqoOutcome, PipelineError> {
        let embedding = triad::triad(&self.graph, 0, 0, problem.num_plans())?;
        self.solve_with_embedding(problem, embedding, seed)
    }

    /// Prepares the reusable half of a solve: the minor embedding of the
    /// problem's interaction *structure*, independent of weights and of the
    /// per-request seed.
    ///
    /// The embedding is computed deterministically from the structure hash
    /// of the logical QUBO (TRIAD origin scan first, heuristic routing as
    /// the fallback), so two structurally identical problems always prepare
    /// the same embedding. A service layer can therefore cache the returned
    /// embedding — keyed by
    /// `(logical QUBO structure hash, graph fingerprint)` — and feed it back
    /// through [`QuantumMqoSolver::solve_with_embedding`], which only
    /// re-derives the weights (the cheap, per-request part of physical
    /// mapping): a cache hit is bit-identical to a cold solve.
    pub fn prepare_embedding(&self, problem: &MqoProblem) -> Result<Embedding, PipelineError> {
        let logical = LogicalMapping::new(problem, self.epsilon);
        let edges: Vec<_> = logical
            .qubo()
            .quadratic()
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect();
        let embedding = mqo_chimera::embedding::embed_structure(
            &self.graph,
            logical.qubo().num_vars(),
            &edges,
            logical.qubo().structure_hash(),
            16,
        )?;
        Ok(embedding)
    }

    /// Solves using the heuristic sparse minor embedder instead of a TRIAD
    /// clique: only the instance's *actual* interaction edges are routed, so
    /// sparse problems far beyond the clique capacity still fit on the chip
    /// (the "new mapping algorithms" direction of the paper's Section 7).
    pub fn solve_sparse(
        &self,
        problem: &MqoProblem,
        seed: u64,
        tries: usize,
    ) -> Result<QuantumMqoOutcome, PipelineError> {
        let logical = LogicalMapping::new(problem, self.epsilon);
        let edges: Vec<_> = logical
            .qubo()
            .quadratic()
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xE3BE);
        let embedding = mqo_chimera::embedding::heuristic::find_embedding(
            logical.qubo().num_vars(),
            &edges,
            &self.graph,
            &mut rng,
            tries,
        )?;
        self.solve_with_embedding(problem, embedding, seed)
    }

    /// Solves a batch of disjointly placed tenants in one composite device
    /// cycle (chip packing). `instances` carry per-tenant embeddings
    /// produced by the packer — their chains must not overlap.
    ///
    /// Only the *clean first-attempt* path runs packed: a tenant whose
    /// composite run errors (rejected programming, unusable couplers),
    /// drops qubits, or fails physical mapping gets `None` and must be
    /// re-solved solo. That is lossless: attempt 0 of a solo solve uses the
    /// request seed directly and consumes no retry randomness, so the solo
    /// re-run reproduces the packed attempt bit-identically and then drives
    /// the full retry/re-embed/fallback machinery. Tenants that do come
    /// back `Some` are bit-identical to a clean solo
    /// [`QuantumMqoSolver::solve_with_embedding`] with the same seed.
    pub fn solve_packed(&self, instances: &[PackedInstance<'_>]) -> Vec<Option<QuantumMqoOutcome>> {
        let mut out: Vec<Option<QuantumMqoOutcome>> = instances.iter().map(|_| None).collect();
        let prepared: Vec<Option<(LogicalMapping, PhysicalMapping)>> = instances
            .iter()
            .map(|inst| {
                let logical = LogicalMapping::new(inst.problem, self.epsilon);
                PhysicalMapping::new(
                    logical.qubo(),
                    inst.embedding.clone(),
                    &self.graph,
                    self.epsilon,
                )
                .ok()
                .map(|physical| (logical, physical))
            })
            .collect();
        let active: Vec<usize> = (0..instances.len())
            .filter(|&i| prepared[i].is_some())
            .collect();
        if active.is_empty() {
            return out;
        }
        let tenants: Vec<PackedTenant<'_>> = active
            .iter()
            .map(|&i| PackedTenant {
                pm: &prepared[i].as_ref().expect("active tenants prepared").1,
                seed: instances[i].seed,
            })
            .collect();
        let results = match composite::run_packed(&self.device, &self.graph, &tenants) {
            Ok(r) => r,
            // Batch-level misconfiguration: every tenant re-solves solo and
            // surfaces the error (or its own clean result) there.
            Err(_) => return out,
        };
        for (a, &i) in active.iter().enumerate() {
            let samples = match &results[a] {
                Ok(samples) => samples,
                // Per-tenant device errors re-enter the solo retry path.
                Err(_) => continue,
            };
            if !samples.faults().dropped_qubits.is_empty() {
                // Dropout decisions (re-embed or keep) belong to the solo
                // resilience loop; hand the tenant back untouched.
                continue;
            }
            let (logical, physical) = prepared[i].as_ref().expect("active tenants prepared");
            out[i] =
                Some(self.finish_clean_outcome(instances[i].problem, logical, physical, samples));
        }
        out
    }

    /// Builds the outcome of a clean (no retry, no dropout) first-attempt
    /// run — shared shape between the packed path and what a solo clean run
    /// produces.
    fn finish_clean_outcome(
        &self,
        problem: &MqoProblem,
        logical: &LogicalMapping,
        physical: &PhysicalMapping,
        samples: &SampleSet,
    ) -> QuantumMqoOutcome {
        let mut best: Option<(Selection, f64)> = None;
        let mut trace = Trace::new();
        let mut repaired_reads = 0usize;
        let mut broken_chain_reads = 0usize;
        let mut descent_moves = 0usize;
        absorb_reads(
            problem,
            logical,
            physical,
            samples,
            0.0,
            self.resilience.repair_descent_moves,
            &mut best,
            &mut trace,
            &mut repaired_reads,
            &mut broken_chain_reads,
            &mut descent_moves,
        );
        let reads = samples.len();
        let mut faults = FaultEvents::default();
        faults.merge(samples.faults());
        QuantumMqoOutcome {
            best: best.expect("a successful device run yields at least one read"),
            trace,
            reads,
            repaired_reads,
            broken_chain_reads,
            qubits_used: physical.num_physical_vars(),
            faults,
            retries: 0,
            reembeds: 0,
            fallback: false,
            chain_breaks: samples.chain_break_stats(&physical.dense_chains()),
            integrity: RepairStats {
                verified_clean: reads - repaired_reads,
                repaired: repaired_reads,
                rejected: 0,
            },
            repair_descent_moves: descent_moves,
        }
    }
}

/// One tenant of a packed pipeline run: a problem, the embedding the packer
/// placed it on (disjoint from its batchmates), and its request seed.
#[derive(Debug, Clone)]
pub struct PackedInstance<'a> {
    /// The tenant's MQO instance.
    pub problem: &'a MqoProblem,
    /// The tenant's placed embedding on the shared graph.
    pub embedding: Embedding,
    /// The seed a solo solve of this request would use.
    pub seed: u64,
}

/// Decodes every read of a sample set into plan selections and accumulates
/// the best-so-far trace — the shared inner loop of solo and packed solves.
/// Float operations run in exactly the order of the original solo loop, so
/// extracting it preserves bit-identity.
#[allow(clippy::too_many_arguments)]
fn absorb_reads(
    problem: &MqoProblem,
    logical: &LogicalMapping,
    physical: &PhysicalMapping,
    samples: &SampleSet,
    offset_us: f64,
    repair_descent_budget: usize,
    best: &mut Option<(Selection, f64)>,
    trace: &mut Trace,
    repaired_reads: &mut usize,
    broken_chain_reads: &mut usize,
    descent_moves: &mut usize,
) {
    for read in samples.reads() {
        let unembedded = physical.unembed(&read.assignment);
        if unembedded.broken_chains > 0 {
            *broken_chain_reads += 1;
        }
        let (selection, repaired) = logical.decode_with_repair(problem, &unembedded.logical);
        let (selection, cost) = if repaired {
            *repaired_reads += 1;
            // Polish the repaired sample with a move-count-bounded descent
            // (deterministic: pure function of problem + selection).
            let (sel, cost, moves) =
                HillClimbing::descend_bounded(problem, selection, repair_descent_budget);
            *descent_moves += moves;
            (sel, cost)
        } else {
            let cost = problem.selection_cost(&selection);
            (selection, cost)
        };
        let elapsed = Duration::from_secs_f64((offset_us + read.elapsed_us) * 1e-6);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            trace.record(elapsed, cost);
            *best = Some((selection, cost));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_annealer::device::DeviceConfig;
    use mqo_annealer::faults::FaultConfig;
    use mqo_annealer::sa::SimulatedAnnealingSampler;

    fn paper_example() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    fn solver() -> QuantumMqoSolver<SimulatedAnnealingSampler> {
        solver_with_faults(FaultConfig::NONE)
    }

    fn solver_with_faults(faults: FaultConfig) -> QuantumMqoSolver<SimulatedAnnealingSampler> {
        QuantumMqoSolver::new(
            ChimeraGraph::new(2, 2),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 50,
                    num_gauges: 5,
                    faults,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        )
    }

    #[test]
    fn algorithm_1_solves_the_paper_example() {
        let problem = paper_example();
        let out = solver().solve(&problem, 11).unwrap();
        let (selection, cost) = out.best;
        assert_eq!(cost, 2.0);
        assert_eq!(problem.selection_cost(&selection), 2.0);
        assert_eq!(out.reads, 50);
        assert!(out.qubits_used >= problem.num_plans());
        // A clean run leaves the resilience machinery untouched.
        assert!(out.faults.is_empty());
        assert_eq!(out.retries, 0);
        assert_eq!(out.reembeds, 0);
        assert!(!out.fallback);
        assert_eq!(out.chain_breaks.reads, 50);
        assert_eq!(out.chain_breaks.num_chains(), problem.num_plans());
    }

    #[test]
    fn prepared_embeddings_are_structure_deterministic_and_reusable() {
        let problem = paper_example();
        let s = solver();
        let e1 = s.prepare_embedding(&problem).unwrap();
        assert_eq!(s.prepare_embedding(&problem).unwrap(), e1);
        // Same structure with different weights prepares the same embedding.
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[7.0, 1.0]);
        let q2 = b.add_query(&[2.0, 9.0]);
        let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
        b.add_saving(p2, p3, 1.0).unwrap();
        let other = b.build().unwrap();
        assert_eq!(s.prepare_embedding(&other).unwrap(), e1);
        // Feeding the prepared embedding back is bit-identical to solve().
        let cold = s.solve(&problem, 11).unwrap();
        let warm = s.solve_with_embedding(&problem, e1, 11).unwrap();
        assert_eq!(cold.best, warm.best);
        assert_eq!(cold.trace.points(), warm.trace.points());
        assert_eq!(cold.reads, warm.reads);
    }

    #[test]
    fn trace_uses_device_time_quanta() {
        let problem = paper_example();
        let out = solver().solve(&problem, 3).unwrap();
        let first = out.trace.points().first().unwrap();
        // First read completes after exactly one anneal+readout cycle.
        assert_eq!(first.elapsed, Duration::from_secs_f64(376e-6));
    }

    #[test]
    fn resilience_knobs_do_not_disturb_clean_runs() {
        let problem = paper_example();
        let a = solver().solve(&problem, 11).unwrap();
        let generous = ResilienceConfig {
            max_retries: 9,
            max_reembeds: 7,
            retry_backoff_us: 1.0,
            ..ResilienceConfig::default()
        };
        let b = solver()
            .with_resilience(generous)
            .solve(&problem, 11)
            .unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.trace.points(), b.trace.points());
        assert_eq!(a.reads, b.reads);
    }

    #[test]
    fn rejected_programmings_retry_then_fall_back_classically() {
        let problem = paper_example();
        let s = solver_with_faults(FaultConfig {
            programming_reject_rate: 1.0,
            ..FaultConfig::NONE
        });
        let out = s.solve(&problem, 11).unwrap();
        assert!(out.fallback);
        assert_eq!(out.retries, s.resilience.max_retries);
        assert_eq!(out.reads, 0);
        assert!(out.faults.programming_rejects > 0);
        // The tiny example climbs straight to its optimum.
        assert_eq!(out.best.1, 2.0);
        assert!(problem.validate_selection(&out.best.0).is_ok());
        assert!(!out.trace.points().is_empty());
    }

    #[test]
    fn exhausted_retries_without_fallback_are_a_typed_error() {
        let problem = paper_example();
        let s = solver_with_faults(FaultConfig {
            programming_reject_rate: 1.0,
            ..FaultConfig::NONE
        })
        .with_resilience(ResilienceConfig {
            classical_fallback: false,
            max_retries: 2,
            ..ResilienceConfig::default()
        });
        let err = s.solve(&problem, 11).unwrap_err();
        match err {
            PipelineError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(last, DeviceError::ProgrammingFailed { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn qubit_dropout_triggers_a_reembedding_round() {
        let problem = paper_example();
        let s = QuantumMqoSolver::new(
            // 3×3 leaves room to re-embed a K4 after a cell dies.
            ChimeraGraph::new(3, 3),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 20,
                    num_gauges: 2,
                    faults: FaultConfig {
                        qubit_dropout_rate: 1.0,
                        ..FaultConfig::NONE
                    },
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        );
        let out = s.solve(&problem, 4).unwrap();
        assert_eq!(out.reembeds, 1, "certain dropout must force a re-embed");
        assert_eq!(out.reads, 40, "both runs' reads accumulate");
        assert!(!out.faults.dropped_qubits.is_empty());
        assert!(!out.fallback);
        assert!(problem.validate_selection(&out.best.0).is_ok());
        // Trace stays monotone in simulated time across the two runs.
        let pts = out.trace.points();
        assert!(pts.windows(2).all(|w| w[0].elapsed <= w[1].elapsed));
    }

    #[test]
    fn solve_sparse_handles_instances_beyond_the_clique_capacity() {
        // 12 queries × 2 plans = 24 vars: a 3×3 graph caps TRIAD at K12,
        // but a chain-structured savings graph routes fine (the greedy
        // embedder needs head-room; it does no chain ripping).
        let mut b = MqoProblem::builder();
        let mut prev = None;
        for i in 0..12 {
            let q = b.add_query(&[2.0 + (i % 2) as f64, 3.0]);
            let plans = b.plans_of(q);
            if let Some(p) = prev {
                b.add_saving(p, plans[1], 2.0).unwrap();
            }
            prev = Some(plans[1]);
        }
        let problem = b.build().unwrap();
        let s = QuantumMqoSolver::new(
            ChimeraGraph::new(3, 3),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 50,
                    num_gauges: 5,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        );
        assert!(s.solve(&problem, 0).is_err(), "clique embedding must fail");
        let out = s.solve_sparse(&problem, 3, 16).expect("sparse embeds");
        assert!(problem.validate_selection(&out.best.0).is_ok());
        let (_, optimum) = problem.brute_force_optimum();
        assert!(out.best.1 <= optimum + 2.0 + 1e-9);
    }

    #[test]
    fn packed_pipeline_outcomes_match_solo_solves() {
        use mqo_chimera::packing;

        // Three small instances packed onto a 4×4 graph; each must decode
        // to exactly what its solo solve produces.
        let problems: Vec<MqoProblem> = (0..3)
            .map(|i| {
                let mut b = MqoProblem::builder();
                let q1 = b.add_query(&[2.0 + i as f64, 4.0]);
                let q2 = b.add_query(&[3.0, 1.0 + i as f64]);
                let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
                b.add_saving(p2, p3, 5.0).unwrap();
                b.build().unwrap()
            })
            .collect();
        let graph = ChimeraGraph::new(4, 4);
        let solver = QuantumMqoSolver::new(
            graph.clone(),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 30,
                    num_gauges: 3,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        );
        let sizes: Vec<usize> = problems.iter().map(|p| p.num_plans()).collect();
        let placements = packing::pack(&graph, &sizes);
        let instances: Vec<PackedInstance<'_>> = problems
            .iter()
            .zip(&placements)
            .enumerate()
            .map(|(i, (problem, placement))| PackedInstance {
                problem,
                embedding: placement.as_ref().expect("fits").embedding.clone(),
                seed: 60 + i as u64,
            })
            .collect();
        let packed = solver.solve_packed(&instances);
        for (i, inst) in instances.iter().enumerate() {
            let solo = solver
                .solve_with_embedding(inst.problem, inst.embedding.clone(), inst.seed)
                .unwrap();
            let out = packed[i].as_ref().expect("clean runs stay packed");
            assert_eq!(out.best, solo.best, "tenant {i}");
            assert_eq!(out.trace.points(), solo.trace.points(), "tenant {i}");
            assert_eq!(out.reads, solo.reads, "tenant {i}");
            assert_eq!(out.qubits_used, solo.qubits_used, "tenant {i}");
            assert_eq!(out.repaired_reads, solo.repaired_reads, "tenant {i}");
            assert_eq!(out.integrity, solo.integrity, "tenant {i}");
        }
    }

    #[test]
    fn packed_tenants_with_device_errors_fall_back_to_solo() {
        // Certain programming rejection: every tenant should come back
        // `None` (solo path owns the retry/fallback machinery).
        let problem = paper_example();
        let s = solver_with_faults(FaultConfig {
            programming_reject_rate: 1.0,
            ..FaultConfig::NONE
        });
        let embedding = triad::triad(&s.graph, 0, 0, problem.num_plans()).unwrap();
        let packed = s.solve_packed(&[PackedInstance {
            problem: &problem,
            embedding,
            seed: 11,
        }]);
        assert!(packed[0].is_none());
    }

    #[test]
    fn packed_tenants_with_dropout_fall_back_to_solo() {
        let problem = paper_example();
        let s = solver_with_faults(FaultConfig {
            qubit_dropout_rate: 1.0,
            ..FaultConfig::NONE
        });
        let embedding = triad::triad(&s.graph, 0, 0, problem.num_plans()).unwrap();
        let packed = s.solve_packed(&[PackedInstance {
            problem: &problem,
            embedding,
            seed: 4,
        }]);
        assert!(packed[0].is_none(), "dropout decisions belong to solo");
    }

    #[test]
    fn problems_too_large_for_the_graph_are_rejected() {
        // 2×2 cells host at most K8 as one TRIAD.
        let mut b = MqoProblem::builder();
        for _ in 0..5 {
            b.add_query(&[1.0, 2.0]);
        }
        let problem = b.build().unwrap();
        let err = solver().solve(&problem, 0).unwrap_err();
        assert!(matches!(err, PipelineError::Embedding(_)));
    }
}
