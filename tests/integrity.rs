//! Property-based tests of the solution-integrity layer: repair always
//! produces a feasible answer the verifier accepts, verify-then-repair is
//! bit-identical across thread counts, and the gate passes clean solves
//! from every backend while the exact oracle bounds their reported costs.

use mqo::annealer::sampler::Sampler;
use mqo::annealer::{BehavioralSampler, ExactSampler};
use mqo::core::integrity::{self, DEFAULT_TOLERANCE};
use mqo::core::PlanId;
use mqo::prelude::*;
use proptest::prelude::*;

/// A chain of `queries` queries with `plans` plans each and savings along
/// the first-plan spine — the shape of the paper's workload, scaled down.
fn chain_problem(queries: usize, plans: usize) -> MqoProblem {
    let mut b = MqoProblem::builder();
    let mut prev: Option<PlanId> = None;
    for i in 0..queries {
        let costs: Vec<f64> = (0..plans).map(|p| 2.0 + ((i + p) % 4) as f64).collect();
        let q = b.add_query(&costs);
        let plan_ids = b.plans_of(q);
        if let Some(p) = prev {
            b.add_saving(p, plan_ids[0], 1.5).unwrap();
        }
        prev = Some(plan_ids[0]);
    }
    b.build().unwrap()
}

fn solver<S: Sampler>(sampler: S, threads: usize) -> QuantumMqoSolver<S> {
    QuantumMqoSolver::new(
        ChimeraGraph::new(2, 2),
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 16,
                num_gauges: 2,
                threads,
                ..DeviceConfig::default()
            },
            sampler,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever garbage the candidate holds — out-of-range plan ids, plans
    /// of the wrong query — repair returns a feasible selection the
    /// verifier accepts, never touches already-feasible candidates, is
    /// idempotent, and the bounded descent polish never worsens it.
    #[test]
    fn repair_is_feasible_verified_and_idempotent(
        queries in 1usize..=5,
        plans in 2usize..=4,
        raw in proptest::collection::vec(0usize..64, 5),
    ) {
        let problem = chain_problem(queries, plans);
        let candidate = Selection::new(
            (0..queries)
                .map(|q| PlanId::new(raw[q] % (problem.num_plans() + 2)))
                .collect(),
        );
        let rep = integrity::repair_selection(&problem, &candidate).unwrap();
        prop_assert!(problem.validate_selection(&rep.selection).is_ok());
        let cost = problem.selection_cost(&rep.selection);
        prop_assert!(
            integrity::verify_selection(&problem, &rep.selection, cost, DEFAULT_TOLERANCE).is_ok()
        );
        if problem.validate_selection(&candidate).is_ok() {
            prop_assert_eq!(rep.repaired_queries, 0);
            prop_assert_eq!(rep.selection.plans(), candidate.plans());
        }
        let again = integrity::repair_selection(&problem, &rep.selection).unwrap();
        prop_assert_eq!(again.repaired_queries, 0);
        prop_assert_eq!(again.selection.plans(), rep.selection.plans());
        let (polished, polished_cost, moves) =
            HillClimbing::descend_bounded(&problem, rep.selection.clone(), 4);
        prop_assert!(problem.validate_selection(&polished).is_ok());
        prop_assert!(polished_cost <= cost + 1e-12);
        prop_assert!(moves <= 4);
    }

    /// The full verify-then-repair pipeline is a pure function of the seed:
    /// best answer, integrity ledger, and descent accounting are
    /// bit-identical at any worker-thread count.
    #[test]
    fn verify_then_repair_is_thread_count_invariant(
        queries in 2usize..=4,
        seed in 0u64..100,
    ) {
        let problem = chain_problem(queries, 2);
        let base = solver(SimulatedAnnealingSampler::default(), 1)
            .solve(&problem, seed)
            .unwrap();
        for threads in [2, 4] {
            let out = solver(SimulatedAnnealingSampler::default(), threads)
                .solve(&problem, seed)
                .unwrap();
            prop_assert_eq!(out.best.0.plans(), base.best.0.plans());
            prop_assert_eq!(out.best.1.to_bits(), base.best.1.to_bits());
            prop_assert_eq!(out.integrity, base.integrity);
            prop_assert_eq!(out.repair_descent_moves, base.repair_descent_moves);
            prop_assert_eq!(out.repaired_reads, base.repaired_reads);
        }
    }
}

/// Clean solves from every backend pass the integrity gate, never undercut
/// the exhaustive optimum, and keep the repair ledger balanced.
#[test]
fn gate_passes_clean_solves_from_every_backend() {
    for queries in 2..=4usize {
        let problem = chain_problem(queries, 2);
        let optimum = problem.brute_force_optimum().1;
        let outcomes = [
            solver(SimulatedAnnealingSampler::default(), 0).solve(&problem, 7),
            solver(PathIntegralQmcSampler::default(), 0).solve(&problem, 7),
            solver(BehavioralSampler::default(), 0).solve(&problem, 7),
            solver(ExactSampler, 0).solve(&problem, 7),
        ];
        for (i, out) in outcomes.into_iter().enumerate() {
            let out = out.unwrap_or_else(|e| panic!("backend {i} failed: {e}"));
            integrity::verify_selection(&problem, &out.best.0, out.best.1, DEFAULT_TOLERANCE)
                .unwrap_or_else(|e| panic!("backend {i} flunked the gate: {e}"));
            integrity::verify_against_bound(out.best.1, optimum, DEFAULT_TOLERANCE)
                .unwrap_or_else(|e| panic!("backend {i} undercut the oracle: {e}"));
            assert_eq!(
                out.integrity.total(),
                out.reads,
                "backend {i}: every read must land in the ledger"
            );
            assert_eq!(out.integrity.rejected, 0, "pipeline repair never rejects");
        }
    }
}
