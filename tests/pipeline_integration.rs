//! Cross-crate integration: Algorithm 1 end to end on generated paper
//! workloads, compared against the exact classical solver.

use mqo::prelude::*;
use mqo_annealer::exact::ExactSampler;
use mqo_milp::{bb_mqo, MqoBbConfig, StopReason};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn device(reads: usize) -> QuantumAnnealer<PathIntegralQmcSampler> {
    QuantumAnnealer::new(
        DeviceConfig {
            num_reads: reads,
            num_gauges: reads.div_ceil(10).max(1),
            ..DeviceConfig::default()
        },
        PathIntegralQmcSampler::default(),
    )
}

#[test]
fn quantum_pipeline_matches_exact_solver_on_paper_workloads() {
    // 3×3 machine, the four paper classes, one instance each.
    let graph = ChimeraGraph::new(3, 3);
    for plans in [2usize, 3, 4, 5] {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + plans as u64);
        let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(plans), &mut rng)
            .expect("benchmark machine hosts the paper class");

        let exact = bb_mqo::solve(&inst.problem, &MqoBbConfig::default());
        assert_eq!(exact.stop, StopReason::Optimal, "plans={plans}");
        let optimum = exact.best.as_ref().unwrap().1;

        let solver = QuantumMqoSolver::new(graph.clone(), device(150));
        let out = solver
            .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), 7)
            .expect("paper instances embed");
        // Tiny instances have optima of a few cost units, so assert an
        // absolute near-optimality gap (one saving unit ≈ 1–2).
        let gap = out.best.1 - optimum;
        assert!(
            (-1e-9..=2.0 + 1e-9).contains(&gap),
            "plans={plans}: QA {:.2} vs optimum {optimum:.2} (gap {gap:.2})",
            out.best.1,
        );
        assert!(inst.problem.validate_selection(&out.best.0).is_ok());
        assert_eq!(out.reads, 150);
    }
}

#[test]
fn exact_sampler_pipeline_is_provably_optimal_on_tiny_instances() {
    // With the brute-force sampler and zero noise, Algorithm 1 is exact:
    // the full logical→physical→anneal→decode loop returns the optimum.
    let graph = ChimeraGraph::new(1, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let solver = QuantumMqoSolver::new(
        graph.clone(),
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 3,
                num_gauges: 1,
                control_error: mqo_annealer::ControlErrorModel::NONE,
                ..DeviceConfig::default()
            },
            ExactSampler,
        ),
    );
    let out = solver
        .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), 0)
        .unwrap();
    let (_, optimum) = inst.problem.brute_force_optimum();
    assert_eq!(out.best.1, optimum);
    assert_eq!(out.repaired_reads, 0);
    assert_eq!(out.broken_chain_reads, 0);
}

#[test]
fn device_time_and_wall_time_are_separate_axes() {
    // A full QA run's trace must live on the microsecond device-time axis
    // even though the simulation takes far longer in wall time.
    let graph = ChimeraGraph::new(2, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(3), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let solver = QuantumMqoSolver::new(graph.clone(), device(100));
    let out = solver
        .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), 1)
        .unwrap();
    let last = out.trace.points().last().unwrap();
    assert!(
        last.elapsed <= Duration::from_millis(38),
        "100 reads cost at most 37.6 ms of device time, got {:?}",
        last.elapsed
    );
}

#[test]
fn broken_qubits_shrink_capacity_but_pipeline_still_works() {
    let mut graph = ChimeraGraph::new(3, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    graph.break_random_qubits(12, &mut rng);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(4), &mut rng)
        .expect("benchmark machine hosts the paper class");
    assert!(inst.problem.num_queries() < 9, "defects must cost capacity");
    let solver = QuantumMqoSolver::new(graph.clone(), device(200));
    let out = solver
        .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), 5)
        .unwrap();
    let exact = bb_mqo::solve(&inst.problem, &MqoBbConfig::default());
    let optimum = exact.best.unwrap().1;
    assert!(out.best.1 <= optimum * 1.05 + 1e-9);
}

#[test]
fn pipeline_rejects_problems_that_do_not_fit() {
    let graph = ChimeraGraph::new(1, 1);
    let mut b = MqoProblem::builder();
    for _ in 0..8 {
        b.add_query(&[1.0, 2.0]);
    }
    let problem = b.build().unwrap();
    let solver = QuantumMqoSolver::new(graph, device(10));
    assert!(solver.solve(&problem, 0).is_err());
}
