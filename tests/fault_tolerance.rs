//! Acceptance tests of the fault-injection + resilience stack: at a 5%
//! uniform fault rate on the small machine, the pipeline must return a
//! valid plan selection on every seeded run, never panic, and account for
//! every injected fault; with faults disabled everything reproduces the
//! clean pipeline exactly.

use mqo::prelude::*;
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const READS: usize = 40;
const GAUGES: usize = 4;

/// The scaled-down CI machine of the bench harness: 4×4 cells, ~5% defects.
fn small_machine() -> ChimeraGraph {
    let mut g = ChimeraGraph::new(4, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(0xD_2016);
    g.break_random_qubits(6, &mut rng);
    g
}

fn small_instance(graph: &ChimeraGraph) -> paper::PaperInstance {
    let cfg = PaperWorkloadConfig {
        max_queries: 6,
        ..PaperWorkloadConfig::paper_class(2)
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    paper::generate(graph, &cfg, &mut rng).expect("small machine hosts six queries")
}

fn solver(
    graph: &ChimeraGraph,
    faults: FaultConfig,
) -> QuantumMqoSolver<SimulatedAnnealingSampler> {
    QuantumMqoSolver::new(
        graph.clone(),
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: READS,
                num_gauges: GAUGES,
                faults,
                ..DeviceConfig::default()
            },
            SimulatedAnnealingSampler::default(),
        ),
    )
}

#[test]
fn five_percent_faults_always_yield_a_valid_selection() {
    let graph = small_machine();
    let inst = small_instance(&graph);
    let s = solver(&graph, FaultConfig::uniform(0.05));
    let mut total_faults = 0usize;
    let mut reembeds = 0usize;
    for seed in 0..50u64 {
        let out = s
            .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), seed)
            .unwrap_or_else(|e| panic!("seed {seed}: pipeline failed: {e}"));
        assert!(
            inst.problem.validate_selection(&out.best.0).is_ok(),
            "seed {seed}: invalid selection"
        );
        assert!(
            out.faults.total() > 0,
            "seed {seed}: a 5% fault rate must inject something"
        );
        // Every read is accounted for: each successful device run (the
        // first plus one per completed re-embedding round) contributes
        // exactly READS reads; fallback-only runs contribute none.
        if !out.fallback {
            assert_eq!(out.reads % READS, 0, "seed {seed}");
            assert!(out.reads >= READS, "seed {seed}");
            assert!(out.reads <= READS * (1 + out.reembeds), "seed {seed}");
        }
        assert_eq!(out.chain_breaks.reads, READS.min(out.reads), "seed {seed}");
        total_faults += out.faults.total();
        reembeds += out.reembeds;
    }
    assert!(total_faults > 50, "faults must be plentiful at 5%");
    assert!(reembeds > 0, "5% dropout must trigger re-embeds somewhere");
}

#[test]
fn disabled_faults_reproduce_the_clean_pipeline_bit_for_bit() {
    let graph = small_machine();
    let inst = small_instance(&graph);
    let clean = solver(&graph, FaultConfig::NONE);
    // Inert knobs differ from the default config but inject nothing.
    let inert = solver(
        &graph,
        FaultConfig {
            max_programming_attempts: 11,
            reprogram_backoff_us: 123.0,
            ..FaultConfig::NONE
        },
    );
    for seed in [0u64, 7, 23] {
        let a = clean
            .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), seed)
            .unwrap();
        let b = inert
            .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), seed)
            .unwrap();
        assert_eq!(a.best, b.best, "seed {seed}");
        assert_eq!(a.trace.points(), b.trace.points(), "seed {seed}");
        assert_eq!(a.reads, READS);
        assert!(a.faults.is_empty());
        assert_eq!(a.retries, 0);
        assert_eq!(a.reembeds, 0);
        assert!(!a.fallback);
        assert_eq!(a.chain_breaks, b.chain_breaks);
    }
}
