//! Property-based test of the resilient pipeline: whatever the fault mix,
//! `solve` either returns a valid plan selection or a typed, displayable
//! error — it never panics and never fabricates an invalid answer.

use mqo::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

fn chain_problem(queries: usize) -> MqoProblem {
    let mut b = MqoProblem::builder();
    let mut prev = None;
    for i in 0..queries {
        let q = b.add_query(&[2.0 + (i % 3) as f64, 3.0]);
        let plans = b.plans_of(q);
        if let Some(p) = prev {
            b.add_saving(p, plans[0], 1.5).unwrap();
        }
        prev = Some(plans[0]);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn solve_never_panics_and_answers_are_valid_or_typed(
        queries in 1usize..=4,
        rate in 0.0f64..0.3,
        reject in 0.0f64..0.9,
        seed in 0u64..200,
        fallback in proptest::bool::ANY,
    ) {
        let problem = chain_problem(queries);
        let solver = QuantumMqoSolver::new(
            ChimeraGraph::new(2, 2),
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 12,
                    num_gauges: 3,
                    faults: FaultConfig {
                        programming_reject_rate: reject,
                        ..FaultConfig::uniform(rate)
                    },
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            ),
        )
        .with_resilience(ResilienceConfig {
            classical_fallback: fallback,
            fallback_budget: Duration::from_millis(20),
            ..ResilienceConfig::default()
        });
        match solver.solve(&problem, seed) {
            Ok(out) => {
                prop_assert!(problem.validate_selection(&out.best.0).is_ok());
                prop_assert!(out.best.1.is_finite());
                // The trace is monotone in simulated device time.
                let pts = out.trace.points();
                prop_assert!(!pts.is_empty());
                prop_assert!(pts.windows(2).all(|w| w[0].elapsed <= w[1].elapsed));
                // Fallback only fires once the retry budget is spent.
                if out.fallback {
                    prop_assert_eq!(out.retries, 2);
                }
            }
            Err(e) => {
                // Typed and displayable; with the fallback enabled, retry
                // exhaustion can never surface as an error.
                prop_assert!(!format!("{e}").is_empty());
                if fallback {
                    prop_assert!(!matches!(
                        e,
                        mqo::pipeline::PipelineError::RetriesExhausted { .. }
                    ));
                }
            }
        }
    }
}
