//! Cross-solver agreement: every optimiser in the workspace, exact or
//! heuristic, measured against brute force on the same instances.

use mqo::prelude::*;
use mqo_core::logical::LogicalMapping;
use mqo_heuristics::HeuristicOutcome;
use mqo_milp::{bb_mqo, bb_qubo, MqoBbConfig, QuboBbConfig, StopReason};
use mqo_workload::generic::{self, RandomWorkloadConfig};
use mqo_workload::relational::{self, RelationalConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn instances() -> Vec<MqoProblem> {
    let mut out = Vec::new();
    for seed in 0..6u64 {
        out.push(generic::generate(
            &RandomWorkloadConfig {
                queries: 6,
                plans_per_query: 3,
                savings_per_query: 3.0,
                ..RandomWorkloadConfig::default()
            },
            &mut ChaCha8Rng::seed_from_u64(seed),
        ));
    }
    out.push(
        relational::generate(
            &RelationalConfig {
                num_tables: 6,
                num_queries: 6,
                tables_per_query: (2, 3),
                plans_per_query: 2,
                ..RelationalConfig::default()
            },
            &mut ChaCha8Rng::seed_from_u64(99),
        )
        .problem,
    );
    out
}

#[test]
fn exact_solvers_agree_with_brute_force_across_generators() {
    for (i, problem) in instances().iter().enumerate() {
        let (_, optimum) = problem.brute_force_optimum();

        let mqo = bb_mqo::solve(problem, &MqoBbConfig::default());
        assert_eq!(mqo.stop, StopReason::Optimal, "instance {i}");
        assert!(
            (mqo.best.as_ref().unwrap().1 - optimum).abs() < 1e-9,
            "instance {i}: bb_mqo"
        );

        let mapping = LogicalMapping::with_default_epsilon(problem);
        let qub = bb_qubo::solve(mapping.qubo(), &QuboBbConfig::default());
        assert_eq!(qub.stop, StopReason::Optimal, "instance {i}");
        let (x, _) = qub.best.unwrap();
        let sel = mapping
            .decode_strict(&x)
            .expect("QUBO optimum decodes to a valid selection");
        assert!(
            (problem.selection_cost(&sel) - optimum).abs() < 1e-9,
            "instance {i}: bb_qubo decoded"
        );
    }
}

#[test]
fn heuristics_never_beat_the_optimum_and_stay_valid() {
    let heuristics: Vec<Box<dyn AnytimeHeuristic>> = vec![
        Box::new(Greedy),
        Box::new(HillClimbing),
        Box::new(GeneticAlgorithm::with_population(50)),
        Box::new(GeneticAlgorithm::with_population(200)),
    ];
    for (i, problem) in instances().iter().enumerate() {
        let (_, optimum) = problem.brute_force_optimum();
        for h in &heuristics {
            let out: HeuristicOutcome = h.run(problem, Duration::from_millis(40), 11);
            assert!(
                out.best.1 >= optimum - 1e-9,
                "instance {i}: {} reported {} below optimum {optimum}",
                h.name(),
                out.best.1
            );
            assert!(
                problem.validate_selection(&out.best.0).is_ok(),
                "instance {i}: {} invalid selection",
                h.name()
            );
            assert!(
                (problem.selection_cost(&out.best.0) - out.best.1).abs() < 1e-9,
                "instance {i}: {} misreported its cost",
                h.name()
            );
        }
    }
}

#[test]
fn hill_climbing_and_ga_reach_the_optimum_given_time_on_small_instances() {
    for (i, problem) in instances().iter().enumerate() {
        let (_, optimum) = problem.brute_force_optimum();
        let climb = HillClimbing.run(problem, Duration::from_millis(150), 5);
        assert!(
            (climb.best.1 - optimum).abs() < 1e-9,
            "instance {i}: CLIMB got {} vs {optimum}",
            climb.best.1
        );
        let ga = GeneticAlgorithm::with_population(50).run(problem, Duration::from_millis(300), 5);
        assert!(
            (ga.best.1 - optimum) <= 0.05 * optimum.abs() + 1e-9,
            "instance {i}: GA(50) got {} vs {optimum}",
            ga.best.1
        );
    }
}

#[test]
fn traces_are_consistent_between_solvers() {
    // Every solver's final trace value must equal its reported best cost.
    let problem = &instances()[0];
    let mqo = bb_mqo::solve(problem, &MqoBbConfig::default());
    assert_eq!(mqo.trace.best(), Some(mqo.best.unwrap().1));
    let climb = HillClimbing.run(problem, Duration::from_millis(30), 0);
    assert_eq!(climb.trace.best(), Some(climb.best.1));
}
