//! Beyond the chip: solving MQO instances *larger than the annealer* as a
//! series of QUBO subproblems — the extension the paper's conclusion
//! announces as future work — plus the footnote-4 task-model reduction.
//!
//! Run with: `cargo run --release --example beyond_the_chip`

use mqo::decomposition::DecompositionConfig;
use mqo::prelude::*;
use mqo_chimera::embedding::triad;
use mqo_core::tasks::{TaskId, TaskModel};
use mqo_heuristics::Greedy;
use mqo_milp::{bb_mqo, MqoBbConfig};
use mqo_workload::generic::{self, RandomWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // ── 1. An instance that cannot fit the device as one QUBO ──────────
    // A 4×4 Chimera patch hosts K16 cliques at most; 60 queries × 3 plans
    // = 180 logical variables are far beyond that.
    let graph = ChimeraGraph::new(4, 4);
    let problem = generic::generate(
        &RandomWorkloadConfig {
            queries: 60,
            plans_per_query: 3,
            savings_per_query: 4.0,
            ..RandomWorkloadConfig::default()
        },
        &mut ChaCha8Rng::seed_from_u64(7),
    );
    println!(
        "instance: {} queries × 3 plans = {} variables; device capacity: K{}",
        problem.num_queries(),
        problem.num_plans(),
        triad::max_clique(&graph)
    );

    let solver = QuantumMqoSolver::new(
        graph,
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 100,
                ..DeviceConfig::default()
            },
            PathIntegralQmcSampler::default(),
        ),
    );
    assert!(
        solver.solve(&problem, 0).is_err(),
        "monolithic embedding must fail"
    );

    // ── 2. Series-of-QUBOs decomposition ────────────────────────────────
    let out = solver
        .solve_decomposed(
            &problem,
            &DecompositionConfig {
                rounds: 4,
                ..DecompositionConfig::default()
            },
            0,
        )
        .unwrap();
    let greedy_cost = problem.selection_cost(&Greedy::construct(&problem));
    let exact = bb_mqo::solve(
        &problem,
        &MqoBbConfig {
            deadline: Some(std::time::Duration::from_secs(5)),
            ..MqoBbConfig::default()
        },
    );
    let optimum = exact.best.as_ref().unwrap().1;
    println!("\nseries-of-QUBOs decomposition:");
    println!("  blocks solved      : {}", out.blocks_solved);
    println!("  blocks improved    : {}", out.blocks_improved);
    println!(
        "  total device time  : {:.1} ms",
        out.device_time.as_secs_f64() * 1e3
    );
    println!("  greedy start       : {greedy_cost:.1}");
    println!(
        "  decomposed result  : {:.1}  ({:+.2}% vs exact {:.1}, {:?})",
        out.best.1,
        (out.best.1 - optimum) / optimum.abs().max(1e-9) * 100.0,
        optimum,
        exact.stop
    );

    // ── 3. Footnote 4: the task-based MQO model ─────────────────────────
    // Three queries whose plans are sets of tasks; shared tasks are paid
    // once. The reduction introduces helper queries so the pairwise model
    // (and therefore the whole annealer pipeline) applies unchanged.
    let t = TaskId;
    let model = TaskModel {
        task_costs: vec![6.0, 4.0, 3.0, 5.0],
        queries: vec![
            vec![vec![t(0)], vec![t(1), t(2)]],
            vec![vec![t(1)], vec![t(3)]],
            vec![vec![t(2), t(3)], vec![t(0)]],
        ],
    };
    let reduction = model.to_mqo().unwrap();
    println!(
        "\ntask model: {} tasks, {} queries → reduced problem with {} queries / {} plans",
        model.task_costs.len(),
        model.queries.len(),
        reduction.problem.num_queries(),
        reduction.problem.num_plans()
    );
    let (selection, cost) = reduction.problem.brute_force_optimum();
    let choice = reduction.project(&selection);
    println!(
        "optimal task-model choice: {choice:?} with true task cost {} (reduced cost {cost})",
        model.execution_cost(&choice)
    );
    assert_eq!(model.execution_cost(&choice), cost);

    // The reduced problem is a perfectly ordinary MQO instance: run it
    // through the annealer too.
    let small = QuantumMqoSolver::new(
        ChimeraGraph::new(4, 4), // the reduction needs a K14 clique
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 100,
                ..DeviceConfig::default()
            },
            PathIntegralQmcSampler::default(),
        ),
    );
    let qa = small.solve(&reduction.problem, 5).unwrap();
    println!(
        "annealer agrees: cost {} in {} reads ({} qubits)",
        qa.best.1, qa.reads, qa.qubits_used
    );
}
