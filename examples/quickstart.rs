//! Quickstart: Example 1 from the paper, end to end.
//!
//! Builds the four-plan MQO instance of Section 4, shows the logical QUBO
//! it maps to, solves it on the simulated quantum annealer (Algorithm 1)
//! and with the exact classical solver, and verifies both agree.
//!
//! Run with: `cargo run --release --example quickstart`

use mqo::prelude::*;
use mqo_core::logical::LogicalMapping;
use mqo_milp::{bb_mqo, MqoBbConfig};

fn main() {
    // ── 1. The MQO instance ────────────────────────────────────────────
    // Two queries; q1 has plans costing {2, 4}, q2 has plans {3, 1}.
    // The expensive plans p2 and p3 can share an intermediate result
    // worth 5 cost units.
    let mut builder = MqoProblem::builder();
    let q1 = builder.add_query(&[2.0, 4.0]);
    let q2 = builder.add_query(&[3.0, 1.0]);
    let p2 = builder.plans_of(q1)[1];
    let p3 = builder.plans_of(q2)[0];
    builder.add_saving(p2, p3, 5.0).unwrap();
    let problem = builder.build().unwrap();
    println!(
        "instance: {} queries, {} plans, {} sharing pair(s)",
        problem.num_queries(),
        problem.num_plans(),
        problem.num_savings()
    );

    // ── 2. The logical mapping (Section 4) ─────────────────────────────
    let mapping = LogicalMapping::with_default_epsilon(&problem);
    println!(
        "logical mapping: wL = {}, wM = {} (paper: 4.25 and 9.5)",
        mapping.w_l(),
        mapping.w_m()
    );
    println!(
        "QUBO: {} variables, {} quadratic terms",
        mapping.qubo().num_vars(),
        mapping.qubo().num_quadratic()
    );

    // ── 3. Algorithm 1 on the simulated D-Wave 2X ──────────────────────
    let solver = QuantumMqoSolver::new(
        ChimeraGraph::dwave_2x(),
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 100,
                num_gauges: 10,
                ..DeviceConfig::default()
            },
            PathIntegralQmcSampler::default(),
        ),
    );
    let quantum = solver.solve(&problem, 7).expect("embeds trivially");
    let (q_selection, q_cost) = &quantum.best;
    println!(
        "quantum annealer: cost {q_cost} after {} reads \
         ({} repaired, {} broken-chain), {} qubits",
        quantum.reads, quantum.repaired_reads, quantum.broken_chain_reads, quantum.qubits_used
    );

    // ── 4. The exact classical answer ──────────────────────────────────
    let classical = bb_mqo::solve(&problem, &MqoBbConfig::default());
    let (c_selection, c_cost) = classical.best.expect("solved");
    println!("branch & bound:  cost {c_cost} ({:?})", classical.stop);

    assert_eq!(*q_cost, c_cost, "both solvers find the optimum");
    assert_eq!(q_selection, &c_selection);
    println!(
        "optimal selection: q1 → plan {}, q2 → plan {} (executes p2 ⧺ p3, \
         paying 4 + 3 − 5 = 2)",
        c_selection.plan_of(q1).index(),
        c_selection.plan_of(q2).index()
    );
}
