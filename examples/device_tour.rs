//! A tour of the simulated D-Wave 2X: topology, broken qubits, minor
//! embedding, chain strengths, and the gauge/noise read protocol.
//!
//! Run with: `cargo run --release --example device_tour`

use mqo::prelude::*;
use mqo_chimera::embedding::{clustered, triad};
use mqo_chimera::physical::PhysicalMapping;
use mqo_chimera::render;
use mqo_core::ids::VarId;
use mqo_core::logical::LogicalMapping;
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // ── 1. The qubit matrix ─────────────────────────────────────────────
    let mut rng = ChaCha8Rng::seed_from_u64(2015);
    let graph = ChimeraGraph::dwave_2x_as_used_in_paper(&mut rng);
    println!(
        "D-Wave 2X: {} qubits in {} unit cells, {} functional (paper: 1097), \
         {} usable couplers",
        graph.num_qubits(),
        graph.rows() * graph.cols(),
        graph.num_working_qubits(),
        graph.couplers().len()
    );

    // A 2×2 extract, like the paper's Figure 1.
    let extract = ChimeraGraph::new(2, 2);
    println!("\na 2x2 extract of the Chimera structure:\n");
    println!("{}", render::render(&extract, None));

    // ── 2. Embedding: logical variables become qubit chains ────────────
    let small = ChimeraGraph::new(3, 3);
    let embedding = triad::triad(&small, 0, 0, 9).unwrap();
    println!(
        "TRIAD embedding of K9 on a 3x3 patch ({} qubits, chains of {}):\n",
        embedding.qubits_used(),
        embedding.max_chain_length()
    );
    println!("{}", render::render(&small, Some(&embedding)));

    // ── 3. Capacity: how many queries fit the real machine ─────────────
    println!("clustered-pattern capacity of this specific machine:");
    for plans in 2..=5 {
        let n = clustered::max_uniform_queries(&graph, plans);
        println!("  {plans} plans/query → {n} queries (paper: 537/253/140/108)");
    }

    // ── 4. Program a real instance and inspect the physical formula ────
    let instance = paper::generate(&graph, &PaperWorkloadConfig::paper_class(3), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let logical = LogicalMapping::with_default_epsilon(&instance.problem);
    let physical = PhysicalMapping::new(
        logical.qubo(),
        instance.layout.embedding.clone(),
        &graph,
        0.25,
    )
    .unwrap();
    let strengths: Vec<f64> = (0..physical.embedding().num_vars())
        .map(|v| physical.chain_strength(VarId::new(v)))
        .collect();
    let max_strength = strengths.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nprogrammed instance: {} queries → {} logical vars → {} qubits; \
         max chain strength {:.2}, physical formula max |w| = {:.2}",
        instance.problem.num_queries(),
        logical.qubo().num_vars(),
        physical.num_physical_vars(),
        max_strength,
        physical.physical_qubo().max_abs_weight()
    );

    // ── 5. The read protocol: gauge batches, 376 µs each ───────────────
    // (200 reads instead of the paper's 1000 keeps this example snappy;
    // one simulated read of a ~1000-qubit problem costs ~60 ms of wall
    // time on the PIQMC back-end.)
    let device = QuantumAnnealer::new(
        DeviceConfig {
            num_reads: 200,
            ..DeviceConfig::default()
        },
        PathIntegralQmcSampler::default(),
    );
    let samples = device.run(&physical, &graph, 1).unwrap();
    let energies: Vec<f64> = samples.reads().iter().map(|r| r.energy).collect();
    let best = samples.best().unwrap();
    let first = &samples.reads()[0];
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    println!(
        "\n{} reads in {:.1} ms of device time: first read energy {:.1}, \
         mean {:.1}, best {:.1}",
        samples.len(),
        samples.reads().last().unwrap().elapsed_us / 1e3,
        first.energy,
        mean,
        best.energy
    );

    // Decode the best read into a plan selection.
    let un = physical.unembed(&best.assignment);
    let (selection, repaired) = logical.decode_with_repair(&instance.problem, &un.logical);
    println!(
        "best read decodes to a {} selection with execution cost {:.1} \
         ({} broken chains)",
        if repaired { "repaired" } else { "valid" },
        instance.problem.selection_cost(&selection),
        un.broken_chains
    );

    // How much do the gauge batches differ? (Per-batch best energies.)
    print!("per-gauge best energies: ");
    for g in 0..device.config().num_gauges {
        let batch_best = samples
            .reads()
            .iter()
            .filter(|r| r.gauge == g)
            .map(|r| r.energy)
            .fold(f64::INFINITY, f64::min);
        print!("{batch_best:.0} ");
    }
    println!("\n(run-to-run spread is the control-error noise the gauges average out)");
}
