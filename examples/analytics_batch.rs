//! A database-shaped scenario: optimising a batch of analytic join queries
//! with shared left-deep subexpressions — the workload class the MQO
//! literature (and the paper's introduction, via systems like SharedDB)
//! motivates.
//!
//! The example generates a synthetic star-ish schema and a batch of join
//! queries, derives alternative join orders and their sharing opportunities,
//! and then compares the quantum-annealer pipeline against greedy, hill
//! climbing, and the exact branch-and-bound.
//!
//! Run with: `cargo run --release --example analytics_batch`

use mqo::prelude::*;
use mqo_milp::{bb_mqo, MqoBbConfig};
use mqo_workload::relational::{self, RelationalConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn main() {
    // ── 1. The batch ────────────────────────────────────────────────────
    let config = RelationalConfig {
        num_tables: 8,
        num_queries: 10,
        tables_per_query: (2, 4),
        plans_per_query: 3,
        ..RelationalConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2016);
    let batch = relational::generate(&config, &mut rng);

    println!("catalog:");
    for t in &batch.tables {
        println!("  {:>4}: {:>9.0} rows", t.name, t.rows);
    }
    println!(
        "\nbatch of {} queries; alternative plans:",
        batch.queries.len()
    );
    for p in batch.problem.plans() {
        println!("  [{:>2}] {}", p.index(), batch.describe_plan(p));
    }
    println!(
        "\n{} sharing opportunities (common join prefixes), e.g.:",
        batch.problem.num_savings()
    );
    for &(p1, p2, s) in batch.problem.savings().iter().take(3) {
        println!(
            "  plans {} & {} share work worth {s:.1}",
            p1.index(),
            p2.index()
        );
    }

    // ── 2. Classical optimisers ─────────────────────────────────────────
    let problem = &batch.problem;
    let greedy = Greedy.run(problem, Duration::from_millis(1), 0);
    let climb = HillClimbing.run(problem, Duration::from_millis(100), 0);
    let exact = bb_mqo::solve(problem, &MqoBbConfig::default());
    let (best_sel, optimal) = exact.best.clone().expect("solved");

    println!("\noptimiser comparison:");
    println!("  greedy construction : {:>8.1}", greedy.best.1);
    println!("  hill climbing (0.1s): {:>8.1}", climb.best.1);
    println!(
        "  branch & bound      : {:>8.1} ({:?}, {} nodes)",
        optimal, exact.stop, exact.nodes
    );

    // ── 3. The quantum annealer ─────────────────────────────────────────
    // The batch is small enough to embed as one global TRIAD clique, so
    // arbitrary sharing structure is representable.
    let solver = QuantumMqoSolver::new(
        ChimeraGraph::dwave_2x(),
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 200,
                ..DeviceConfig::default()
            },
            PathIntegralQmcSampler::default(),
        ),
    );
    match solver.solve(problem, 99) {
        Ok(out) => {
            println!(
                "  quantum annealer    : {:>8.1} ({} reads, {} qubits, device time {:.1} ms)",
                out.best.1,
                out.reads,
                out.qubits_used,
                out.trace
                    .points()
                    .last()
                    .map_or(0.0, |p| p.elapsed.as_secs_f64() * 1e3)
            );
            let overhead = (out.best.1 - optimal) / optimal.abs().max(1e-9);
            println!("    → {:.2}% above the proved optimum", overhead * 100.0);
        }
        Err(e) => println!("  quantum annealer    : not embeddable ({e})"),
    }

    // ── 4. What the optimal batch plan looks like ───────────────────────
    println!("\noptimal batch execution plan (cost {optimal:.1}):");
    for q in problem.queries() {
        println!("  {}", batch.describe_plan(best_sel.plan_of(q)));
    }
    let no_sharing: f64 = problem
        .queries()
        .map(|q| {
            problem
                .plans_of(q)
                .map(|p| problem.plan_cost(p))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    println!(
        "\nwithout work sharing the batch would cost at least {no_sharing:.1}; \
         MQO saves {:.1}%",
        (1.0 - optimal / no_sharing) * 100.0
    );
}
